//! Peer group advertisements.

use super::{AdvKind, AdvParseError, Advertisement, ServiceAdvertisement};
use crate::id::{PeerGroupId, PeerId};
use crate::xml::XmlElement;

/// Membership policy carried inside a peer group advertisement, used by the
/// Peer Membership Protocol to decide who may join.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MembershipPolicy {
    /// Anyone may join (the default).
    #[default]
    Open,
    /// Joining requires presenting this password as a credential.
    Password(String),
}

impl MembershipPolicy {
    fn to_xml(&self) -> XmlElement {
        match self {
            MembershipPolicy::Open => XmlElement::with_text("Membership", "open"),
            MembershipPolicy::Password(pw) => {
                XmlElement::with_text("Membership", "password").attr("secret", pw.clone())
            }
        }
    }

    fn from_xml(xml: &XmlElement) -> MembershipPolicy {
        match xml.text.trim() {
            "password" => MembershipPolicy::Password(xml.attribute("secret").unwrap_or("").to_owned()),
            _ => MembershipPolicy::Open,
        }
    }
}

/// Advertises a peer group: its id, creator, name, membership policy and the
/// services available inside it.
///
/// The paper's ski-rental application creates one group advertisement per
/// event type, named `ps-<TypeName>`, and embeds the wire service (with its
/// pipe) inside it — the structure reproduced here.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerGroupAdvertisement {
    /// The group's stable identifier.
    pub group_id: PeerGroupId,
    /// The id of the peer that created/published the group.
    pub creator: PeerId,
    /// The group name (searchable; `ps-SkiRental` in the paper's example).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Whether the creator offers rendezvous service for the group.
    pub is_rendezvous: bool,
    /// Who may join.
    pub membership: MembershipPolicy,
    /// Services available inside the group, keyed by name.
    pub services: Vec<ServiceAdvertisement>,
}

impl PeerGroupAdvertisement {
    /// Creates a group advertisement with no services and an open membership.
    pub fn new(group_id: PeerGroupId, name: impl Into<String>, creator: PeerId) -> Self {
        PeerGroupAdvertisement {
            group_id,
            creator,
            name: name.into(),
            description: String::new(),
            is_rendezvous: false,
            membership: MembershipPolicy::Open,
            services: Vec::new(),
        }
    }

    /// Builder-style rendezvous flag.
    pub fn with_rendezvous(mut self, is_rendezvous: bool) -> Self {
        self.is_rendezvous = is_rendezvous;
        self
    }

    /// Builder-style membership policy.
    pub fn with_membership(mut self, membership: MembershipPolicy) -> Self {
        self.membership = membership;
        self
    }

    /// Adds (or replaces) a service advertisement, keyed by service name.
    ///
    /// This mirrors the paper's `services.put(WireService.WireName, wireAdv)`.
    pub fn put_service(&mut self, service: ServiceAdvertisement) {
        if let Some(existing) = self.services.iter_mut().find(|s| s.name == service.name) {
            *existing = service;
        } else {
            self.services.push(service);
        }
    }

    /// Looks up a service advertisement by name.
    pub fn service(&self, name: &str) -> Option<&ServiceAdvertisement> {
        self.services.iter().find(|s| s.name == name)
    }
}

impl Advertisement for PeerGroupAdvertisement {
    const ROOT: &'static str = "jxta:PeerGroupAdvertisement";

    fn kind(&self) -> AdvKind {
        AdvKind::Group
    }

    fn unique_key(&self) -> String {
        self.group_id.to_string()
    }

    fn display_name(&self) -> String {
        self.name.clone()
    }

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT)
            .text_child("Gid", self.group_id.to_string())
            .text_child("Pid", self.creator.to_string())
            .text_child("Name", self.name.clone())
            .text_child("Desc", self.description.clone())
            .text_child("Rdv", if self.is_rendezvous { "true" } else { "false" });
        root.push_child(self.membership.to_xml());
        let mut services = XmlElement::new("Services");
        for service in &self.services {
            services.push_child(service.to_xml());
        }
        root.push_child(services);
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError> {
        if xml.name != Self::ROOT {
            return Err(AdvParseError::new(format!("expected {} root", Self::ROOT)));
        }
        let group_id = xml
            .child_text("Gid")
            .ok_or_else(|| AdvParseError::new("group advertisement missing <Gid>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad group id: {e}")))?;
        let creator = xml
            .child_text("Pid")
            .ok_or_else(|| AdvParseError::new("group advertisement missing <Pid>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad creator id: {e}")))?;
        let name = xml.child_text_or_empty("Name").to_owned();
        let description = xml.child_text_or_empty("Desc").to_owned();
        let is_rendezvous = xml.child_text_or_empty("Rdv") == "true";
        let membership = xml
            .first_child("Membership")
            .map(MembershipPolicy::from_xml)
            .unwrap_or_default();
        let mut services = Vec::new();
        if let Some(list) = xml.first_child("Services") {
            for service_xml in list.children_named(ServiceAdvertisement::ROOT) {
                services.push(ServiceAdvertisement::from_xml(service_xml)?);
            }
        }
        Ok(PeerGroupAdvertisement {
            group_id,
            creator,
            name,
            description,
            is_rendezvous,
            membership,
            services,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::{PipeAdvertisement, PipeType};
    use crate::id::PipeId;

    fn sample() -> PeerGroupAdvertisement {
        let mut adv = PeerGroupAdvertisement::new(
            PeerGroupId::derive("ps-SkiRental"),
            "ps-SkiRental",
            PeerId::derive("creator"),
        )
        .with_rendezvous(true)
        .with_membership(MembershipPolicy::Password("hunter2".into()));
        adv.put_service(
            ServiceAdvertisement::new("jxta.service.wire")
                .with_pipe(PipeAdvertisement::new(
                    PipeId::derive("ski"),
                    "SkiRental",
                    PipeType::JxtaWire,
                ))
                .with_keywords("SkiRental"),
        );
        adv.put_service(ServiceAdvertisement::new("jxta.service.resolver"));
        adv
    }

    #[test]
    fn xml_roundtrip_preserves_services_and_membership() {
        let adv = sample();
        let parsed = PeerGroupAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed, adv);
        assert_eq!(parsed.services.len(), 2);
        assert!(matches!(parsed.membership, MembershipPolicy::Password(ref p) if p == "hunter2"));
    }

    #[test]
    fn put_service_replaces_by_name() {
        let mut adv = sample();
        let replacement = ServiceAdvertisement::new("jxta.service.wire").with_keywords("Replaced");
        adv.put_service(replacement);
        assert_eq!(adv.services.len(), 2);
        assert_eq!(adv.service("jxta.service.wire").unwrap().keywords, "Replaced");
        assert!(adv.service("jxta.service.cms").is_none());
    }

    #[test]
    fn parse_rejects_missing_gid() {
        let bad = XmlElement::new(PeerGroupAdvertisement::ROOT).text_child("Name", "x");
        assert!(PeerGroupAdvertisement::from_xml(&bad).is_err());
    }

    #[test]
    fn open_membership_is_default() {
        let adv = PeerGroupAdvertisement::new(PeerGroupId::world(), "World", PeerId::derive("x"));
        let parsed = PeerGroupAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed.membership, MembershipPolicy::Open);
    }
}
