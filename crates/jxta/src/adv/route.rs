//! Route advertisements (Endpoint Routing Protocol).

use super::{AdvKind, AdvParseError, Advertisement};
use crate::id::PeerId;
use crate::xml::XmlElement;
use simnet::SimAddress;

/// Advertises how to reach a peer: either directly at one of its endpoints,
/// or through a relay peer (a rendezvous/router) when a firewall prevents a
/// direct connection — the scenario of the paper's Figure 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAdvertisement {
    /// The peer this route leads to.
    pub dest: PeerId,
    /// The relay to go through, if the destination is not directly reachable.
    pub relay: Option<PeerId>,
    /// The destination's known endpoints (possibly stale).
    pub endpoints: Vec<SimAddress>,
}

impl RouteAdvertisement {
    /// Creates a direct route (no relay).
    pub fn direct(dest: PeerId, endpoints: Vec<SimAddress>) -> Self {
        RouteAdvertisement {
            dest,
            relay: None,
            endpoints,
        }
    }

    /// Creates a relayed route.
    pub fn via_relay(dest: PeerId, relay: PeerId, endpoints: Vec<SimAddress>) -> Self {
        RouteAdvertisement {
            dest,
            relay: Some(relay),
            endpoints,
        }
    }

    /// Whether the route requires a relay hop.
    pub fn is_relayed(&self) -> bool {
        self.relay.is_some()
    }
}

impl Advertisement for RouteAdvertisement {
    const ROOT: &'static str = "jxta:RouteAdvertisement";

    fn kind(&self) -> AdvKind {
        AdvKind::Adv
    }

    fn unique_key(&self) -> String {
        format!("route:{}", self.dest)
    }

    fn display_name(&self) -> String {
        format!("route to {}", self.dest)
    }

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT).text_child("Dst", self.dest.to_string());
        if let Some(relay) = &self.relay {
            root.push_child(XmlElement::with_text("Relay", relay.to_string()));
        }
        let mut endpoints = XmlElement::new("Endpoints");
        for addr in &self.endpoints {
            endpoints.push_child(XmlElement::with_text("Addr", addr.to_string()));
        }
        root.push_child(endpoints);
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, AdvParseError> {
        if xml.name != Self::ROOT {
            return Err(AdvParseError::new(format!("expected {} root", Self::ROOT)));
        }
        let dest = xml
            .child_text("Dst")
            .ok_or_else(|| AdvParseError::new("route advertisement missing <Dst>"))?
            .parse()
            .map_err(|e| AdvParseError::new(format!("bad destination peer id: {e}")))?;
        let relay = match xml.child_text("Relay") {
            Some(text) => Some(
                text.parse()
                    .map_err(|e| AdvParseError::new(format!("bad relay peer id: {e}")))?,
            ),
            None => None,
        };
        let mut endpoints = Vec::new();
        if let Some(list) = xml.first_child("Endpoints") {
            for addr in list.children_named("Addr") {
                endpoints.push(
                    addr.text
                        .trim()
                        .parse()
                        .map_err(|e| AdvParseError::new(format!("bad route endpoint: {e}")))?,
                );
            }
        }
        Ok(RouteAdvertisement {
            dest,
            relay,
            endpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TransportKind;

    #[test]
    fn direct_route_roundtrips() {
        let adv = RouteAdvertisement::direct(
            PeerId::derive("bob"),
            vec![SimAddress::new(TransportKind::Tcp, 7, 9701)],
        );
        let parsed = RouteAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed, adv);
        assert!(!parsed.is_relayed());
    }

    #[test]
    fn relayed_route_roundtrips() {
        let adv = RouteAdvertisement::via_relay(PeerId::derive("bob"), PeerId::derive("rdv"), vec![]);
        let parsed = RouteAdvertisement::from_xml(&adv.to_xml()).unwrap();
        assert_eq!(parsed, adv);
        assert!(parsed.is_relayed());
        assert!(parsed.display_name().contains("route to"));
    }

    #[test]
    fn parse_rejects_bad_ids() {
        let bad = XmlElement::new(RouteAdvertisement::ROOT).text_child("Dst", "not-an-id");
        assert!(RouteAdvertisement::from_xml(&bad).is_err());
    }
}
