//! A minimal XML document model.
//!
//! JXTA advertisements are XML documents; peers exchange them inside messages
//! and store them in their local cache. The reproduction only needs a small,
//! well-defined subset of XML: elements, attributes, text content and
//! escaping — no namespaces, comments, CDATA, processing instructions or
//! doctypes. The writer always produces documents the parser accepts
//! (round-trip property-tested in the crate's test-suite).

use std::fmt;

/// An XML element: name, attributes, text and child elements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// The element (tag) name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Concatenated character data directly inside this element.
    pub text: String,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
}

impl XmlElement {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Creates an element containing only text.
    pub fn with_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            text: text.into(),
            ..Default::default()
        }
    }

    /// Adds an attribute (builder style).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// Adds a child element holding only text (builder style).
    pub fn text_child(self, name: impl Into<String>, text: impl Into<String>) -> Self {
        self.child(XmlElement::with_text(name, text))
    }

    /// Appends a child element in place.
    pub fn push_child(&mut self, child: XmlElement) {
        self.children.push(child);
    }

    /// Looks up an attribute value by key.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first child with the given tag name, if any.
    pub fn first_child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The text of the first child with the given name (trimmed), if any.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.first_child(name).map(|c| c.text.trim())
    }

    /// The text of the first child with the given name, or an empty string.
    pub fn child_text_or_empty(&self, name: &str) -> &str {
        self.child_text(name).unwrap_or("")
    }

    /// Serialises the element (and its subtree) to an XML string.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.text.is_empty() && self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        out.push_str(&escape(&self.text));
        for child in &self.children {
            child.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a single XML document from a string.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input (mismatched tags, bad
    /// attribute syntax, trailing content, unknown entities).
    pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
        let mut parser = Parser {
            input: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace_and_prolog()?;
        let element = parser.parse_element()?;
        parser.skip_whitespace();
        if parser.pos != parser.input.len() {
            return Err(XmlError::TrailingContent(parser.pos));
        }
        Ok(element)
    }
}

impl fmt::Display for XmlElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Escapes text for inclusion in element content or attribute values.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Unescapes the five predefined XML entities.
pub fn unescape(text: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let semi = rest.find(';').ok_or(XmlError::BadEntity)?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => return Err(XmlError::BadEntity),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Errors produced by [`XmlElement::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended before the document was complete.
    UnexpectedEof,
    /// An unexpected byte was found at the given offset.
    Unexpected(usize),
    /// A closing tag did not match the open tag.
    MismatchedTag { expected: String, found: String },
    /// Content remained after the root element closed.
    TrailingContent(usize),
    /// An unknown or malformed `&...;` entity.
    BadEntity,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => f.write_str("unexpected end of xml input"),
            XmlError::Unexpected(pos) => write!(f, "unexpected character at offset {pos}"),
            XmlError::MismatchedTag { expected, found } => {
                write!(
                    f,
                    "mismatched closing tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlError::TrailingContent(pos) => write!(f, "trailing content after document at offset {pos}"),
            XmlError::BadEntity => f.write_str("unknown or malformed xml entity"),
        }
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, XmlError> {
        let b = self.peek().ok_or(XmlError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_whitespace_and_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        // Accept an optional `<?xml ... ?>` prolog.
        if self.input[self.pos..].starts_with(b"<?") {
            while !self.input[self.pos..].starts_with(b"?>") {
                if self.pos >= self.input.len() {
                    return Err(XmlError::UnexpectedEof);
                }
                self.pos += 1;
            }
            self.pos += 2;
            self.skip_whitespace();
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Unexpected(self.pos));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<(), XmlError> {
        if self.bump()? != byte {
            return Err(XmlError::Unexpected(self.pos - 1));
        }
        Ok(())
    }

    fn parse_attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = self.bump()?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::Unexpected(self.pos - 1));
        }
        let start = self.pos;
        while self.peek().ok_or(XmlError::UnexpectedEof)? != quote {
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
        self.pos += 1; // closing quote
        unescape(&raw)
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name.clone());
        loop {
            self.skip_whitespace();
            match self.peek().ok_or(XmlError::UnexpectedEof)? {
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                b'>' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    let key = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect(b'=')?;
                    self.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    element.attributes.push((key, value));
                }
            }
        }
        // Content: text and children until the matching close tag.
        loop {
            match self.peek().ok_or(XmlError::UnexpectedEof)? {
                b'<' => {
                    if self.input[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        self.skip_whitespace();
                        self.expect(b'>')?;
                        if close != name {
                            return Err(XmlError::MismatchedTag {
                                expected: name,
                                found: close,
                            });
                        }
                        element.text = element.text.trim().to_owned();
                        return Ok(element);
                    }
                    let child = self.parse_element()?;
                    element.children.push(child);
                }
                _ => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'<') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    element.text.push_str(&unescape(&raw)?);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialise() {
        let doc = XmlElement::new("PipeAdvertisement")
            .attr("type", "JxtaWire")
            .text_child("Id", "urn:jxta:pipe-abc")
            .text_child("Name", "SkiRental");
        let xml = doc.to_xml();
        assert_eq!(
            xml,
            "<PipeAdvertisement type=\"JxtaWire\"><Id>urn:jxta:pipe-abc</Id><Name>SkiRental</Name></PipeAdvertisement>"
        );
    }

    #[test]
    fn parse_roundtrip() {
        let doc = XmlElement::new("A")
            .attr("k", "v with \"quotes\" & <angles>")
            .text_child("B", "text & more")
            .child(XmlElement::new("C").attr("x", "1").text_child("D", "deep"));
        let parsed = XmlElement::parse(&doc.to_xml()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accepts_prolog_and_whitespace() {
        let xml = "  <?xml version=\"1.0\"?>\n  <Root><Leaf>x</Leaf></Root>  ";
        let parsed = XmlElement::parse(xml).unwrap();
        assert_eq!(parsed.name, "Root");
        assert_eq!(parsed.child_text("Leaf"), Some("x"));
    }

    #[test]
    fn parse_self_closing_and_empty() {
        let parsed = XmlElement::parse("<Empty/>").unwrap();
        assert_eq!(parsed, XmlElement::new("Empty"));
        let parsed = XmlElement::parse("<Empty></Empty>").unwrap();
        assert_eq!(parsed.name, "Empty");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(XmlElement::parse("<A><B></A></B>").is_err());
        assert!(XmlElement::parse("<A>").is_err());
        assert!(XmlElement::parse("<A/><B/>").is_err());
        assert!(XmlElement::parse("<A attr=unquoted/>").is_err());
        assert!(XmlElement::parse("plain text").is_err());
        assert!(XmlElement::parse("<A>&unknown;</A>").is_err());
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "a & b < c > d \" e ' f";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("& no semicolon").is_err());
    }

    #[test]
    fn accessors_find_children_and_attributes() {
        let doc = XmlElement::new("Adv")
            .attr("age", "30")
            .text_child("Name", "ps-SkiRental")
            .text_child("Name", "second")
            .text_child("Gid", "urn:jxta:group-1");
        assert_eq!(doc.attribute("age"), Some("30"));
        assert_eq!(doc.attribute("missing"), None);
        assert_eq!(doc.child_text("Name"), Some("ps-SkiRental"));
        assert_eq!(doc.children_named("Name").count(), 2);
        assert_eq!(doc.child_text_or_empty("Missing"), "");
    }

    #[test]
    fn mixed_text_is_trimmed_but_preserved() {
        let parsed = XmlElement::parse("<A>  hello  <B/>  </A>").unwrap();
        assert_eq!(parsed.text, "hello");
        assert_eq!(parsed.children.len(), 1);
    }
}
