//! The endpoint layer: transport-level framing of JXTA traffic and the
//! per-peer route table.
//!
//! Everything a peer puts on the simulated network is one [`WireMessage`]
//! encoded into a [`Message`] and then into bytes. The [`EndpointService`]
//! keeps what the peer has learned about how to reach other peers (from peer
//! advertisements, pipe-binding responses and route advertisements) and picks
//! the best address for a destination, falling back to relaying via a
//! rendezvous when no direct route exists (Endpoint Routing Protocol).

use crate::adv::{Advertisement, PeerAdvertisement, RouteAdvertisement};
use crate::error::JxtaError;
use crate::id::{PeerId, PipeId, Uuid};
use crate::message::{Message, MessageElement};
use crate::protocols::prp::{ResolverQuery, ResolverResponse};
use crate::protocols::ProtocolPayload;
use bytes::Bytes;
use simnet::{SimAddress, TransportKind};
use std::collections::HashMap;

/// Namespace for endpoint-layer message elements.
pub const NAMESPACE: &str = "jxta";
/// Element carrying the wire message discriminator.
pub const TYPE_ELEMENT: &str = "MsgType";

/// A packet travelling on a many-to-many ("wire") pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePacket {
    /// The pipe this packet belongs to.
    pub pipe_id: PipeId,
    /// Unique id used for duplicate suppression during propagation.
    pub msg_id: Uuid,
    /// The peer that originally published the packet.
    pub src_peer: PeerId,
    /// Remaining propagation hops.
    pub ttl: u8,
    /// Trace ids of the events packed inside `payload`, one per event (a
    /// batched publish carries several). Empty when tracing is disabled —
    /// the wire envelope then carries no trace element at all.
    pub trace_ids: Vec<telemetry::trace::TraceId>,
    /// The encoded application [`Message`].
    pub payload: Bytes,
}

/// Everything a peer can put on the network, classified.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// A resolver query (PRP), carrying PDP/PIP/PMP/PBP/ERP bodies.
    ResolverQuery(ResolverQuery),
    /// A resolver response (PRP).
    ResolverResponse(ResolverResponse),
    /// A client asking a rendezvous for a lease.
    RendezvousConnect {
        /// The connecting peer's advertisement (id + endpoints).
        peer: PeerAdvertisement,
    },
    /// A rendezvous granting (or refusing) a lease.
    RendezvousLease {
        /// The rendezvous peer granting the lease.
        rdv: PeerId,
        /// Whether the lease was granted.
        granted: bool,
        /// Lease duration in virtual milliseconds.
        lease_ms: u64,
    },
    /// A rendezvous announcing itself to a fellow rendezvous, establishing
    /// (or refreshing) a rendezvous-to-rendezvous mesh link for sharded
    /// deployments. `ack` breaks the hello ping-pong: a hello (`ack: false`)
    /// is answered with the receiver's own announcement (`ack: true`), which
    /// is never answered again.
    MeshLink {
        /// The announcing rendezvous peer's advertisement (id + endpoints).
        peer: PeerAdvertisement,
        /// Whether this announcement answers a received hello.
        ack: bool,
    },
    /// An unsolicited advertisement push (`remotePublish`).
    Publish {
        /// The advertisement being pushed, as XML.
        adv_xml: String,
        /// The publishing peer.
        src_peer: PeerId,
    },
    /// A compact load report, piggybacked on the housekeeping tick: edge
    /// peers send theirs to their rendezvous; rendezvous peers gossip their
    /// own across the mesh links, building the per-shard load table the
    /// rebalancing controller decides from.
    LoadReport {
        /// The reporting peer.
        peer: PeerId,
        /// The load record.
        report: telemetry::LoadReport,
    },
    /// Data on a many-to-many wire pipe.
    WireData(WirePacket),
    /// A relay envelope: "please forward `inner` to `dest`" (ERP).
    Relay {
        /// The peer the inner message is destined for.
        dest: PeerId,
        /// The encoded inner [`Message`].
        inner: Bytes,
    },
}

impl WireMessage {
    fn type_tag(&self) -> &'static str {
        match self {
            WireMessage::ResolverQuery(_) => "resolver-query",
            WireMessage::ResolverResponse(_) => "resolver-response",
            WireMessage::RendezvousConnect { .. } => "rdv-connect",
            WireMessage::RendezvousLease { .. } => "rdv-lease",
            WireMessage::MeshLink { .. } => "mesh-link",
            WireMessage::Publish { .. } => "publish",
            WireMessage::LoadReport { .. } => "load-report",
            WireMessage::WireData(_) => "wire-data",
            WireMessage::Relay { .. } => "relay",
        }
    }

    /// Encodes into a transport [`Message`].
    pub fn to_message(&self) -> Message {
        let mut msg = Message::new();
        msg.add(MessageElement::text(NAMESPACE, TYPE_ELEMENT, self.type_tag()));
        match self {
            WireMessage::ResolverQuery(q) => {
                msg.add(MessageElement::xml(NAMESPACE, "ResolverQuery", q.to_xml_string()));
            }
            WireMessage::ResolverResponse(r) => {
                msg.add(MessageElement::xml(
                    NAMESPACE,
                    "ResolverResponse",
                    r.to_xml_string(),
                ));
            }
            WireMessage::RendezvousConnect { peer } => {
                msg.add(MessageElement::xml(NAMESPACE, "PeerAdv", peer.to_xml().to_xml()));
            }
            WireMessage::MeshLink { peer, ack } => {
                msg.add(MessageElement::xml(NAMESPACE, "PeerAdv", peer.to_xml().to_xml()));
                msg.add(MessageElement::text(
                    NAMESPACE,
                    "Ack",
                    if *ack { "true" } else { "false" },
                ));
            }
            WireMessage::RendezvousLease {
                rdv,
                granted,
                lease_ms,
            } => {
                msg.add(MessageElement::text(NAMESPACE, "Rdv", rdv.to_string()));
                msg.add(MessageElement::text(
                    NAMESPACE,
                    "Granted",
                    if *granted { "true" } else { "false" },
                ));
                msg.add(MessageElement::text(NAMESPACE, "LeaseMs", lease_ms.to_string()));
            }
            WireMessage::Publish { adv_xml, src_peer } => {
                msg.add(MessageElement::xml(NAMESPACE, "Adv", adv_xml.clone()));
                msg.add(MessageElement::text(NAMESPACE, "SrcPeer", src_peer.to_string()));
            }
            WireMessage::LoadReport { peer, report } => {
                msg.add(MessageElement::text(NAMESPACE, "Peer", peer.to_string()));
                msg.add(MessageElement::text(
                    NAMESPACE,
                    "Load",
                    format!(
                        "{},{},{},{}",
                        report.events_relayed, report.fan_out, report.mailbox_depth, report.lease_count
                    ),
                ));
            }
            WireMessage::WireData(packet) => {
                msg.add(MessageElement::text(
                    NAMESPACE,
                    "PipeId",
                    packet.pipe_id.to_string(),
                ));
                msg.add(MessageElement::text(NAMESPACE, "MsgId", packet.msg_id.to_hex()));
                msg.add(MessageElement::text(
                    NAMESPACE,
                    "SrcPeer",
                    packet.src_peer.to_string(),
                ));
                msg.add(MessageElement::text(NAMESPACE, "Ttl", packet.ttl.to_string()));
                if !packet.trace_ids.is_empty() {
                    msg.add(MessageElement::text(
                        NAMESPACE,
                        "Trace",
                        telemetry::trace::TraceId::encode_list(&packet.trace_ids),
                    ));
                }
                msg.add(MessageElement::binary(
                    NAMESPACE,
                    "Payload",
                    packet.payload.clone(),
                ));
            }
            WireMessage::Relay { dest, inner } => {
                msg.add(MessageElement::text(NAMESPACE, "Dest", dest.to_string()));
                msg.add(MessageElement::binary(NAMESPACE, "Inner", inner.clone()));
            }
        }
        msg
    }

    /// Encodes straight to bytes (the datagram payload).
    pub fn to_bytes(&self) -> Bytes {
        self.to_message().to_bytes()
    }

    /// Decodes from a transport [`Message`].
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError`] if the discriminator or any required element is
    /// missing or malformed.
    pub fn from_message(msg: &Message) -> Result<WireMessage, JxtaError> {
        let tag = msg
            .element_text(NAMESPACE, TYPE_ELEMENT)
            .ok_or_else(|| JxtaError::MissingElement(TYPE_ELEMENT.to_owned()))?;
        let text = |name: &str| -> Result<String, JxtaError> {
            msg.element_text(NAMESPACE, name)
                .ok_or_else(|| JxtaError::MissingElement(name.to_owned()))
        };
        match tag.as_str() {
            "resolver-query" => Ok(WireMessage::ResolverQuery(ResolverQuery::from_xml_string(
                &text("ResolverQuery")?,
            )?)),
            "resolver-response" => Ok(WireMessage::ResolverResponse(ResolverResponse::from_xml_string(
                &text("ResolverResponse")?,
            )?)),
            "rdv-connect" => {
                let xml = crate::xml::XmlElement::parse(&text("PeerAdv")?)?;
                Ok(WireMessage::RendezvousConnect {
                    peer: PeerAdvertisement::from_xml(&xml)?,
                })
            }
            "mesh-link" => {
                let xml = crate::xml::XmlElement::parse(&text("PeerAdv")?)?;
                Ok(WireMessage::MeshLink {
                    peer: PeerAdvertisement::from_xml(&xml)?,
                    ack: text("Ack")? == "true",
                })
            }
            "rdv-lease" => Ok(WireMessage::RendezvousLease {
                rdv: text("Rdv")?
                    .parse()
                    .map_err(|e| JxtaError::BadXml(format!("bad rdv id: {e}")))?,
                granted: text("Granted")? == "true",
                lease_ms: text("LeaseMs")?
                    .parse()
                    .map_err(|_| JxtaError::BadXml("bad lease".into()))?,
            }),
            "publish" => Ok(WireMessage::Publish {
                adv_xml: text("Adv")?,
                src_peer: text("SrcPeer")?
                    .parse()
                    .map_err(|e| JxtaError::BadXml(format!("bad src peer: {e}")))?,
            }),
            "load-report" => {
                let load = text("Load")?;
                let mut fields = load.split(',');
                let mut next = || -> Result<u64, JxtaError> {
                    fields
                        .next()
                        .and_then(|f| f.parse().ok())
                        .ok_or_else(|| JxtaError::BadXml(format!("bad load report: {load}")))
                };
                Ok(WireMessage::LoadReport {
                    peer: text("Peer")?
                        .parse()
                        .map_err(|e| JxtaError::BadXml(format!("bad peer: {e}")))?,
                    report: telemetry::LoadReport {
                        events_relayed: next()?,
                        fan_out: next()? as u32,
                        mailbox_depth: next()? as u32,
                        lease_count: next()? as u32,
                    },
                })
            }
            "wire-data" => {
                let payload = msg
                    .element(NAMESPACE, "Payload")
                    .ok_or_else(|| JxtaError::MissingElement("Payload".to_owned()))?
                    .body
                    .clone();
                Ok(WireMessage::WireData(WirePacket {
                    pipe_id: text("PipeId")?
                        .parse()
                        .map_err(|e| JxtaError::BadXml(format!("bad pipe id: {e}")))?,
                    msg_id: Uuid::from_hex(&text("MsgId")?)
                        .map_err(|e| JxtaError::BadXml(format!("bad msg id: {e}")))?,
                    src_peer: text("SrcPeer")?
                        .parse()
                        .map_err(|e| JxtaError::BadXml(format!("bad src peer: {e}")))?,
                    ttl: text("Ttl")?
                        .parse()
                        .map_err(|_| JxtaError::BadXml("bad ttl".into()))?,
                    // Tolerant: packets from untraced senders carry no Trace
                    // element; a malformed one degrades to no ids.
                    trace_ids: msg
                        .element_text(NAMESPACE, "Trace")
                        .map(|t| telemetry::trace::TraceId::decode_list(&t))
                        .unwrap_or_default(),
                    payload,
                }))
            }
            "relay" => Ok(WireMessage::Relay {
                dest: text("Dest")?
                    .parse()
                    .map_err(|e| JxtaError::BadXml(format!("bad dest: {e}")))?,
                inner: msg
                    .element(NAMESPACE, "Inner")
                    .ok_or_else(|| JxtaError::MissingElement("Inner".to_owned()))?
                    .body
                    .clone(),
            }),
            other => Err(JxtaError::BadXml(format!("unknown wire message type {other}"))),
        }
    }

    /// Decodes from raw datagram bytes.
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError`] on framing or payload errors.
    pub fn from_bytes(bytes: &[u8]) -> Result<WireMessage, JxtaError> {
        let msg = Message::from_bytes(bytes)?;
        Self::from_message(&msg)
    }
}

/// What the peer currently knows about reaching another peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerRoute {
    /// Known endpoint addresses, in preference order.
    pub endpoints: Vec<SimAddress>,
    /// A relay peer to go through if the endpoints do not work.
    pub relay: Option<PeerId>,
}

/// The per-peer route table.
#[derive(Debug, Default)]
pub struct EndpointService {
    routes: HashMap<PeerId, PeerRoute>,
}

impl EndpointService {
    /// Creates an empty route table.
    pub fn new() -> Self {
        EndpointService::default()
    }

    /// Records (or refreshes) a peer's endpoints from its advertisement.
    pub fn learn_from_peer_adv(&mut self, adv: &PeerAdvertisement) {
        let entry = self.routes.entry(adv.peer_id).or_insert_with(|| PeerRoute {
            endpoints: Vec::new(),
            relay: None,
        });
        entry.endpoints = adv.endpoints.clone();
    }

    /// Records endpoints learned from a pipe-binding response or rendezvous
    /// connect.
    pub fn learn_endpoints(&mut self, peer: PeerId, endpoints: Vec<SimAddress>) {
        let entry = self.routes.entry(peer).or_insert_with(|| PeerRoute {
            endpoints: Vec::new(),
            relay: None,
        });
        entry.endpoints = endpoints;
    }

    /// Records a route advertisement (possibly relayed).
    pub fn learn_route(&mut self, route: &RouteAdvertisement) {
        let entry = self.routes.entry(route.dest).or_insert_with(|| PeerRoute {
            endpoints: Vec::new(),
            relay: None,
        });
        if !route.endpoints.is_empty() {
            entry.endpoints = route.endpoints.clone();
        }
        entry.relay = route.relay;
    }

    /// Forgets everything known about a peer.
    pub fn forget(&mut self, peer: PeerId) {
        self.routes.remove(&peer);
    }

    /// The best direct address for a peer, given the transports available
    /// locally: first matching endpoint in the peer's preference order.
    pub fn best_address(&self, peer: PeerId, local_transports: &[TransportKind]) -> Option<SimAddress> {
        self.routes.get(&peer).and_then(|route| {
            route
                .endpoints
                .iter()
                .copied()
                .find(|addr| local_transports.contains(&addr.transport))
        })
    }

    /// The relay recorded for a peer, if any.
    pub fn relay_for(&self, peer: PeerId) -> Option<PeerId> {
        self.routes.get(&peer).and_then(|r| r.relay)
    }

    /// Whether anything at all is known about the peer.
    pub fn knows(&self, peer: PeerId) -> bool {
        self.routes.contains_key(&peer)
    }

    /// Number of peers with known routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the route table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::PeerGroupId;

    fn adv(name: &str, addrs: Vec<SimAddress>) -> PeerAdvertisement {
        PeerAdvertisement::new(PeerId::derive(name), name, PeerGroupId::world()).with_endpoints(addrs)
    }

    #[test]
    fn wire_messages_roundtrip() {
        let samples = vec![
            WireMessage::RendezvousConnect {
                peer: adv("alice", vec![SimAddress::new(TransportKind::Tcp, 1, 9701)]),
            },
            WireMessage::RendezvousLease { rdv: PeerId::derive("rdv"), granted: true, lease_ms: 30_000 },
            WireMessage::MeshLink {
                peer: adv("rdv-1", vec![SimAddress::new(TransportKind::Tcp, 2, 9701)]),
                ack: true,
            },
            WireMessage::Publish { adv_xml: "<jxta:PipeAdvertisement><Id>urn:jxta:pipe-00000000000000000000000000000000</Id><Type>JxtaWire</Type><Name>x</Name></jxta:PipeAdvertisement>".into(), src_peer: PeerId::derive("p") },
            WireMessage::WireData(WirePacket {
                pipe_id: PipeId::derive("ski"),
                msg_id: Uuid::derive("m1"),
                src_peer: PeerId::derive("pub"),
                ttl: 3,
                trace_ids: Vec::new(),
                payload: Bytes::from_static(b"event bytes"),
            }),
            WireMessage::WireData(WirePacket {
                pipe_id: PipeId::derive("ski"),
                msg_id: Uuid::derive("m2"),
                src_peer: PeerId::derive("pub"),
                ttl: 3,
                trace_ids: vec![
                    telemetry::trace::TraceId { origin: 0xAB, seq: 1 },
                    telemetry::trace::TraceId { origin: 0xAB, seq: 2 },
                ],
                payload: Bytes::from_static(b"batched events"),
            }),
            WireMessage::Relay { dest: PeerId::derive("carol"), inner: Bytes::from_static(b"inner") },
            WireMessage::LoadReport {
                peer: PeerId::derive("rdv-2"),
                report: telemetry::LoadReport {
                    events_relayed: 1234,
                    fan_out: 17,
                    mailbox_depth: 3,
                    lease_count: 9,
                },
            },
        ];
        for sample in samples {
            let decoded = WireMessage::from_bytes(&sample.to_bytes()).unwrap();
            assert_eq!(decoded, sample);
        }
    }

    #[test]
    fn untraced_packets_carry_no_trace_element() {
        let packet = WirePacket {
            pipe_id: PipeId::derive("ski"),
            msg_id: Uuid::derive("m1"),
            src_peer: PeerId::derive("pub"),
            ttl: 3,
            trace_ids: Vec::new(),
            payload: Bytes::from_static(b"event bytes"),
        };
        let msg = WireMessage::WireData(packet).to_message();
        assert!(
            msg.element_text(NAMESPACE, "Trace").is_none(),
            "tracing disabled must add zero bytes to the wire envelope"
        );
    }

    #[test]
    fn resolver_messages_roundtrip_through_wire() {
        let q = ResolverQuery::new(
            "urn:jxta:handler-PDP",
            crate::id::QueryId(3),
            PeerId::derive("a"),
            "<Q/>".into(),
        );
        let wrapped = WireMessage::ResolverQuery(q.clone());
        match WireMessage::from_bytes(&wrapped.to_bytes()).unwrap() {
            WireMessage::ResolverQuery(decoded) => assert_eq!(decoded, q),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_unknown_and_missing() {
        let mut msg = Message::new();
        msg.add(MessageElement::text(
            NAMESPACE,
            TYPE_ELEMENT,
            "quantum-entanglement",
        ));
        assert!(WireMessage::from_message(&msg).is_err());
        assert!(WireMessage::from_message(&Message::new()).is_err());
        assert!(WireMessage::from_bytes(b"garbage").is_err());
    }

    #[test]
    fn endpoint_service_prefers_usable_transports() {
        let mut es = EndpointService::new();
        let peer = PeerId::derive("bob");
        es.learn_endpoints(
            peer,
            vec![
                SimAddress::new(TransportKind::Http, 5, 9702),
                SimAddress::new(TransportKind::Tcp, 5, 9701),
            ],
        );
        // Preference order is the peer's own: http first here.
        assert_eq!(
            es.best_address(peer, &[TransportKind::Tcp, TransportKind::Http])
                .unwrap()
                .transport,
            TransportKind::Http
        );
        // If we only have TCP locally, fall back to the TCP endpoint.
        assert_eq!(
            es.best_address(peer, &[TransportKind::Tcp]).unwrap().transport,
            TransportKind::Tcp
        );
        // No usable transport in common.
        assert_eq!(es.best_address(peer, &[TransportKind::Bluetooth]), None);
    }

    #[test]
    fn endpoint_service_learns_and_forgets() {
        let mut es = EndpointService::new();
        let alice = adv("alice", vec![SimAddress::new(TransportKind::Tcp, 1, 9701)]);
        es.learn_from_peer_adv(&alice);
        assert!(es.knows(alice.peer_id));
        assert_eq!(es.len(), 1);

        let route = RouteAdvertisement::via_relay(alice.peer_id, PeerId::derive("rdv"), vec![]);
        es.learn_route(&route);
        assert_eq!(es.relay_for(alice.peer_id), Some(PeerId::derive("rdv")));
        // Endpoints from the adv survive an endpoint-less route adv.
        assert!(es.best_address(alice.peer_id, &[TransportKind::Tcp]).is_some());

        es.forget(alice.peer_id);
        assert!(!es.knows(alice.peer_id));
        assert!(es.is_empty());
    }
}
