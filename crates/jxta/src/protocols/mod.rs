//! The six JXTA protocols.
//!
//! Mirroring the JXTA specification (and the paper's Section 2.2):
//!
//! * **PRP** — Peer Resolver Protocol ([`prp`]): generic query/response
//!   envelopes dispatched to named handlers; everything below rides on it.
//! * **PDP** — Peer Discovery Protocol ([`pdp`]): find advertisements.
//! * **PIP** — Peer Information Protocol ([`pip`]): peer status/uptime.
//! * **PMP** — Peer Membership Protocol ([`pmp`]): apply / join / leave.
//! * **PBP** — Pipe Binding Protocol ([`pbp`]): bind pipe ids to the peers
//!   and addresses that currently host them.
//! * **ERP** — Endpoint Routing Protocol ([`erp`]): find routes (possibly
//!   through relays) to peers that cannot be reached directly.
//!
//! Each protocol defines plain-data query/response types that serialise to
//! XML; the XML rides inside [`prp`] envelopes, which in turn ride inside
//! [`crate::message::Message`]s on the simulated network.

pub mod erp;
pub mod pbp;
pub mod pdp;
pub mod pip;
pub mod pmp;
pub mod prp;

use crate::error::JxtaError;
use crate::xml::XmlElement;

/// Well-known resolver handler names, one per protocol that rides on PRP.
pub mod handlers {
    /// The Peer Discovery Protocol handler.
    pub const PDP: &str = "urn:jxta:handler-PDP";
    /// The Peer Information Protocol handler.
    pub const PIP: &str = "urn:jxta:handler-PIP";
    /// The Peer Membership Protocol handler.
    pub const PMP: &str = "urn:jxta:handler-PMP";
    /// The Pipe Binding Protocol handler.
    pub const PBP: &str = "urn:jxta:handler-PBP";
    /// The Endpoint Routing Protocol handler.
    pub const ERP: &str = "urn:jxta:handler-ERP";
}

/// Shared behaviour of protocol payloads: conversion to and from XML.
pub trait ProtocolPayload: Sized {
    /// The XML root element name.
    const ROOT: &'static str;

    /// Serialises the payload to XML.
    fn to_xml(&self) -> XmlElement;

    /// Parses the payload from XML.
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError`] when required elements are missing or malformed.
    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError>;

    /// Serialises to an XML string (convenience for resolver bodies).
    fn to_xml_string(&self) -> String {
        self.to_xml().to_xml()
    }

    /// Parses from an XML string (convenience for resolver bodies).
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError`] when the text is not valid XML or not a valid
    /// payload of this type.
    fn from_xml_string(text: &str) -> Result<Self, JxtaError> {
        let xml = XmlElement::parse(text)?;
        Self::from_xml(&xml)
    }
}

pub(crate) fn required_child<'a>(xml: &'a XmlElement, name: &str) -> Result<&'a str, JxtaError> {
    xml.child_text(name)
        .ok_or_else(|| JxtaError::MissingElement(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_names_are_distinct() {
        let all = [
            handlers::PDP,
            handlers::PIP,
            handlers::PMP,
            handlers::PBP,
            handlers::ERP,
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn required_child_reports_missing_elements() {
        let xml = XmlElement::new("X").text_child("Present", "yes");
        assert_eq!(required_child(&xml, "Present").unwrap(), "yes");
        let err = required_child(&xml, "Absent").unwrap_err();
        assert!(err.to_string().contains("Absent"));
    }
}
