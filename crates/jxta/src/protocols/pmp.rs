//! Peer Membership Protocol (PMP).
//!
//! Joining a peer group is a two-step dance (the paper's Figure 4): the peer
//! first *applies*, learning the group's membership requirements (e.g. a
//! password credential), and then *joins* by presenting a credential. The
//! protocol also covers leaving and renewing membership.

use super::{required_child, ProtocolPayload};
use crate::error::JxtaError;
use crate::id::{PeerGroupId, PeerId};
use crate::xml::XmlElement;

/// The credential requirements a group imposes on applicants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredentialRequirement {
    /// No credential is required.
    None,
    /// A password must be presented.
    Password,
}

impl CredentialRequirement {
    fn as_str(&self) -> &'static str {
        match self {
            CredentialRequirement::None => "none",
            CredentialRequirement::Password => "password",
        }
    }

    fn parse(s: &str) -> Result<Self, JxtaError> {
        match s {
            "none" => Ok(CredentialRequirement::None),
            "password" => Ok(CredentialRequirement::Password),
            other => Err(JxtaError::BadXml(format!(
                "unknown credential requirement {other}"
            ))),
        }
    }
}

/// A credential presented when joining.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Credential {
    /// No credential.
    #[default]
    None,
    /// A plain password credential.
    Password(String),
}

impl Credential {
    fn to_xml(&self) -> XmlElement {
        match self {
            Credential::None => XmlElement::with_text("Credential", "none"),
            Credential::Password(pw) => {
                XmlElement::with_text("Credential", "password").attr("secret", pw.clone())
            }
        }
    }

    fn from_xml(xml: &XmlElement) -> Credential {
        match xml.text.trim() {
            "password" => Credential::Password(xml.attribute("secret").unwrap_or("").to_owned()),
            _ => Credential::None,
        }
    }
}

/// The membership operation being requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipOp {
    /// Ask what credentials are required ("apply").
    Apply,
    /// Join with a credential.
    Join(Credential),
    /// Renew an existing membership.
    Renew,
    /// Leave the group.
    Leave,
}

/// A membership query addressed to a group's membership authority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipQuery {
    /// The group concerned.
    pub group_id: PeerGroupId,
    /// The peer making the request.
    pub applicant: PeerId,
    /// The requested operation.
    pub op: MembershipOp,
}

impl ProtocolPayload for MembershipQuery {
    const ROOT: &'static str = "jxta:MembershipQuery";

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT)
            .text_child("Gid", self.group_id.to_string())
            .text_child("Applicant", self.applicant.to_string());
        match &self.op {
            MembershipOp::Apply => root.push_child(XmlElement::with_text("Op", "apply")),
            MembershipOp::Renew => root.push_child(XmlElement::with_text("Op", "renew")),
            MembershipOp::Leave => root.push_child(XmlElement::with_text("Op", "leave")),
            MembershipOp::Join(credential) => {
                root.push_child(XmlElement::with_text("Op", "join"));
                root.push_child(credential.to_xml());
            }
        }
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let group_id = required_child(xml, "Gid")?
            .parse()
            .map_err(|e| JxtaError::BadXml(format!("bad group id: {e}")))?;
        let applicant = required_child(xml, "Applicant")?
            .parse()
            .map_err(|e| JxtaError::BadXml(format!("bad applicant id: {e}")))?;
        let op = match required_child(xml, "Op")? {
            "apply" => MembershipOp::Apply,
            "renew" => MembershipOp::Renew,
            "leave" => MembershipOp::Leave,
            "join" => {
                let credential = xml
                    .first_child("Credential")
                    .map(Credential::from_xml)
                    .unwrap_or_default();
                MembershipOp::Join(credential)
            }
            other => return Err(JxtaError::BadXml(format!("unknown membership op {other}"))),
        };
        Ok(MembershipQuery {
            group_id,
            applicant,
            op,
        })
    }
}

/// The outcome of a membership query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipVerdict {
    /// Response to an apply: these are the requirements.
    Requirements(CredentialRequirement),
    /// The join/renew was accepted.
    Accepted,
    /// The join/renew was rejected for the given reason.
    Rejected(String),
    /// Leave acknowledged.
    Left,
}

/// A membership response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipResponse {
    /// The group concerned.
    pub group_id: PeerGroupId,
    /// The verdict.
    pub verdict: MembershipVerdict,
}

impl ProtocolPayload for MembershipResponse {
    const ROOT: &'static str = "jxta:MembershipResponse";

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT).text_child("Gid", self.group_id.to_string());
        match &self.verdict {
            MembershipVerdict::Requirements(req) => {
                root.push_child(XmlElement::with_text("Verdict", "requirements").attr("req", req.as_str()));
            }
            MembershipVerdict::Accepted => root.push_child(XmlElement::with_text("Verdict", "accepted")),
            MembershipVerdict::Left => root.push_child(XmlElement::with_text("Verdict", "left")),
            MembershipVerdict::Rejected(reason) => {
                root.push_child(XmlElement::with_text("Verdict", "rejected").attr("reason", reason.clone()));
            }
        }
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let group_id = required_child(xml, "Gid")?
            .parse()
            .map_err(|e| JxtaError::BadXml(format!("bad group id: {e}")))?;
        let verdict_xml = xml
            .first_child("Verdict")
            .ok_or_else(|| JxtaError::MissingElement("Verdict".into()))?;
        let verdict = match verdict_xml.text.trim() {
            "accepted" => MembershipVerdict::Accepted,
            "left" => MembershipVerdict::Left,
            "rejected" => {
                MembershipVerdict::Rejected(verdict_xml.attribute("reason").unwrap_or("").to_owned())
            }
            "requirements" => MembershipVerdict::Requirements(CredentialRequirement::parse(
                verdict_xml.attribute("req").unwrap_or("none"),
            )?),
            other => return Err(JxtaError::BadXml(format!("unknown verdict {other}"))),
        };
        Ok(MembershipResponse { group_id, verdict })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid() -> PeerGroupId {
        PeerGroupId::derive("ps-SkiRental")
    }

    #[test]
    fn apply_and_join_roundtrip() {
        let apply = MembershipQuery {
            group_id: gid(),
            applicant: PeerId::derive("a"),
            op: MembershipOp::Apply,
        };
        assert_eq!(
            MembershipQuery::from_xml_string(&apply.to_xml_string()).unwrap(),
            apply
        );

        let join = MembershipQuery {
            group_id: gid(),
            applicant: PeerId::derive("a"),
            op: MembershipOp::Join(Credential::Password("hunter2".into())),
        };
        let decoded = MembershipQuery::from_xml_string(&join.to_xml_string()).unwrap();
        assert_eq!(decoded, join);
    }

    #[test]
    fn leave_and_renew_roundtrip() {
        for op in [MembershipOp::Leave, MembershipOp::Renew] {
            let q = MembershipQuery {
                group_id: gid(),
                applicant: PeerId::derive("a"),
                op,
            };
            assert_eq!(MembershipQuery::from_xml_string(&q.to_xml_string()).unwrap(), q);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for verdict in [
            MembershipVerdict::Requirements(CredentialRequirement::Password),
            MembershipVerdict::Requirements(CredentialRequirement::None),
            MembershipVerdict::Accepted,
            MembershipVerdict::Rejected("bad password".into()),
            MembershipVerdict::Left,
        ] {
            let r = MembershipResponse {
                group_id: gid(),
                verdict,
            };
            assert_eq!(
                MembershipResponse::from_xml_string(&r.to_xml_string()).unwrap(),
                r
            );
        }
    }

    #[test]
    fn malformed_is_rejected() {
        assert!(MembershipQuery::from_xml_string("<jxta:MembershipQuery/>").is_err());
        let bad_op = XmlElement::new(MembershipQuery::ROOT)
            .text_child("Gid", gid().to_string())
            .text_child("Applicant", PeerId::derive("a").to_string())
            .text_child("Op", "teleport");
        assert!(MembershipQuery::from_xml(&bad_op).is_err());
    }
}
