//! Endpoint Routing Protocol (ERP).
//!
//! When a peer cannot reach another peer directly (firewalls, missing common
//! transports), it asks the routing infrastructure for a route; rendezvous /
//! router peers answer with a [`RouteAdvertisement`] that may relay through
//! themselves (the paper's Figure 6: `Peer A -> rdv/router -> Peer C`,
//! crossing a firewall via HTTP).

use super::{required_child, ProtocolPayload};
use crate::adv::{Advertisement, RouteAdvertisement};
use crate::error::JxtaError;
use crate::id::PeerId;
use crate::xml::XmlElement;

/// Asks for a route to `dest`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteQuery {
    /// The peer we want to reach.
    pub dest: PeerId,
    /// The peer asking.
    pub requester: PeerId,
}

impl ProtocolPayload for RouteQuery {
    const ROOT: &'static str = "jxta:RouteQuery";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("Dst", self.dest.to_string())
            .text_child("Requester", self.requester.to_string())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        Ok(RouteQuery {
            dest: required_child(xml, "Dst")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad destination id: {e}")))?,
            requester: required_child(xml, "Requester")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad requester id: {e}")))?,
        })
    }
}

/// A route answer: the embedded route advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResponse {
    /// The route to the requested peer.
    pub route: RouteAdvertisement,
}

impl ProtocolPayload for RouteResponse {
    const ROOT: &'static str = "jxta:RouteResponse";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT).child(self.route.to_xml())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let route_xml = xml
            .first_child(RouteAdvertisement::ROOT)
            .ok_or_else(|| JxtaError::MissingElement(RouteAdvertisement::ROOT.to_owned()))?;
        Ok(RouteResponse {
            route: RouteAdvertisement::from_xml(route_xml)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SimAddress, TransportKind};

    #[test]
    fn query_roundtrips() {
        let q = RouteQuery {
            dest: PeerId::derive("carol"),
            requester: PeerId::derive("alice"),
        };
        assert_eq!(RouteQuery::from_xml_string(&q.to_xml_string()).unwrap(), q);
    }

    #[test]
    fn response_roundtrips_direct_and_relayed() {
        let direct = RouteResponse {
            route: RouteAdvertisement::direct(
                PeerId::derive("carol"),
                vec![SimAddress::new(TransportKind::Tcp, 9, 9701)],
            ),
        };
        assert_eq!(
            RouteResponse::from_xml_string(&direct.to_xml_string()).unwrap(),
            direct
        );

        let relayed = RouteResponse {
            route: RouteAdvertisement::via_relay(PeerId::derive("carol"), PeerId::derive("rdv"), vec![]),
        };
        let decoded = RouteResponse::from_xml_string(&relayed.to_xml_string()).unwrap();
        assert!(decoded.route.is_relayed());
    }

    #[test]
    fn missing_route_is_rejected() {
        assert!(RouteResponse::from_xml_string("<jxta:RouteResponse/>").is_err());
    }
}
