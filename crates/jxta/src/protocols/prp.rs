//! Peer Resolver Protocol (PRP).
//!
//! The resolver is the generic query/response bus of JXTA (the paper's
//! Figure 2): protocols register *handlers* by name, queries carry the
//! handler name plus an opaque XML body, and responses find their way back to
//! the querying peer. "The more handlers are registered with PRP, the more
//! peers a given peer is potentially able to communicate with."

use super::{required_child, ProtocolPayload};
use crate::error::JxtaError;
use crate::id::{PeerId, QueryId};
use crate::message::{Message, MessageElement};
use crate::xml::XmlElement;

/// Namespace used for resolver message elements.
pub const NAMESPACE: &str = "jxta";
/// Message element name carrying a resolver query.
pub const QUERY_ELEMENT: &str = "ResolverQuery";
/// Message element name carrying a resolver response.
pub const RESPONSE_ELEMENT: &str = "ResolverResponse";

/// A resolver query: "ask whoever handles `handler` this `body`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverQuery {
    /// The handler (protocol) this query is for.
    pub handler: String,
    /// Correlates responses with the query.
    pub query_id: QueryId,
    /// The peer that issued the query.
    pub src_peer: PeerId,
    /// Remaining propagation hops (decremented when re-propagated by
    /// rendezvous peers).
    pub hops_left: u8,
    /// The protocol-specific XML body.
    pub body: String,
}

impl ResolverQuery {
    /// Creates a query with the default hop budget.
    pub fn new(handler: impl Into<String>, query_id: QueryId, src_peer: PeerId, body: String) -> Self {
        ResolverQuery {
            handler: handler.into(),
            query_id,
            src_peer,
            hops_left: 3,
            body,
        }
    }

    /// Wraps the query into a transport [`Message`].
    pub fn to_message(&self) -> Message {
        Message::new().with(MessageElement::xml(
            NAMESPACE,
            QUERY_ELEMENT,
            self.to_xml_string(),
        ))
    }

    /// Extracts a query from a transport [`Message`], if present.
    pub fn from_message(message: &Message) -> Option<Result<Self, JxtaError>> {
        message
            .element(NAMESPACE, QUERY_ELEMENT)
            .map(|e| Self::from_xml_string(&e.body_text()))
    }
}

impl ProtocolPayload for ResolverQuery {
    const ROOT: &'static str = "jxta:ResolverQuery";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("Handler", self.handler.clone())
            .text_child("QueryId", self.query_id.0.to_string())
            .text_child("SrcPeer", self.src_peer.to_string())
            .text_child("Hops", self.hops_left.to_string())
            .text_child("Body", self.body.clone())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        Ok(ResolverQuery {
            handler: required_child(xml, "Handler")?.to_owned(),
            query_id: QueryId(
                required_child(xml, "QueryId")?
                    .parse()
                    .map_err(|_| JxtaError::BadXml("bad query id".into()))?,
            ),
            src_peer: required_child(xml, "SrcPeer")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad src peer: {e}")))?,
            hops_left: required_child(xml, "Hops")?
                .parse()
                .map_err(|_| JxtaError::BadXml("bad hop count".into()))?,
            body: xml.child_text_or_empty("Body").to_owned(),
        })
    }
}

/// A resolver response, sent back to the querying peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverResponse {
    /// The handler (protocol) that produced the response.
    pub handler: String,
    /// Matches the query's id.
    pub query_id: QueryId,
    /// The peer that produced the response.
    pub src_peer: PeerId,
    /// The protocol-specific XML body.
    pub body: String,
}

impl ResolverResponse {
    /// Creates a response for a given query.
    pub fn answering(query: &ResolverQuery, src_peer: PeerId, body: String) -> Self {
        ResolverResponse {
            handler: query.handler.clone(),
            query_id: query.query_id,
            src_peer,
            body,
        }
    }

    /// Wraps the response into a transport [`Message`].
    pub fn to_message(&self) -> Message {
        Message::new().with(MessageElement::xml(
            NAMESPACE,
            RESPONSE_ELEMENT,
            self.to_xml_string(),
        ))
    }

    /// Extracts a response from a transport [`Message`], if present.
    pub fn from_message(message: &Message) -> Option<Result<Self, JxtaError>> {
        message
            .element(NAMESPACE, RESPONSE_ELEMENT)
            .map(|e| Self::from_xml_string(&e.body_text()))
    }
}

impl ProtocolPayload for ResolverResponse {
    const ROOT: &'static str = "jxta:ResolverResponse";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("Handler", self.handler.clone())
            .text_child("QueryId", self.query_id.0.to_string())
            .text_child("SrcPeer", self.src_peer.to_string())
            .text_child("Body", self.body.clone())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        Ok(ResolverResponse {
            handler: required_child(xml, "Handler")?.to_owned(),
            query_id: QueryId(
                required_child(xml, "QueryId")?
                    .parse()
                    .map_err(|_| JxtaError::BadXml("bad query id".into()))?,
            ),
            src_peer: required_child(xml, "SrcPeer")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad src peer: {e}")))?,
            body: xml.child_text_or_empty("Body").to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::handlers;

    fn query() -> ResolverQuery {
        ResolverQuery::new(
            handlers::PDP,
            QueryId(7),
            PeerId::derive("alice"),
            "<Q/>".to_owned(),
        )
    }

    #[test]
    fn query_roundtrips_through_xml_and_message() {
        let q = query();
        assert_eq!(ResolverQuery::from_xml_string(&q.to_xml_string()).unwrap(), q);
        let msg = q.to_message();
        let extracted = ResolverQuery::from_message(&msg).unwrap().unwrap();
        assert_eq!(extracted, q);
        assert!(ResolverResponse::from_message(&msg).is_none());
    }

    #[test]
    fn response_roundtrips_and_correlates() {
        let q = query();
        let r = ResolverResponse::answering(&q, PeerId::derive("bob"), "<R/>".to_owned());
        assert_eq!(r.query_id, q.query_id);
        assert_eq!(r.handler, q.handler);
        let decoded = ResolverResponse::from_xml_string(&r.to_xml_string()).unwrap();
        assert_eq!(decoded, r);
        let msg = r.to_message();
        assert_eq!(ResolverResponse::from_message(&msg).unwrap().unwrap(), r);
        assert!(ResolverQuery::from_message(&msg).is_none());
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert!(ResolverQuery::from_xml_string("<jxta:ResolverQuery/>").is_err());
        assert!(ResolverQuery::from_xml_string("not xml").is_err());
        let missing_peer = XmlElement::new(ResolverQuery::ROOT)
            .text_child("Handler", "h")
            .text_child("QueryId", "1")
            .text_child("Hops", "3");
        assert!(ResolverQuery::from_xml(&missing_peer).is_err());
    }

    #[test]
    fn nested_xml_bodies_survive_escaping() {
        let inner = "<Inner attr=\"a&b\"><Deep>text</Deep></Inner>";
        let q = ResolverQuery::new(handlers::PBP, QueryId(1), PeerId::derive("x"), inner.to_owned());
        let round = ResolverQuery::from_xml_string(&q.to_xml_string()).unwrap();
        assert_eq!(round.body, inner);
    }
}
