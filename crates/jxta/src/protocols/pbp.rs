//! Pipe Binding Protocol (PBP).
//!
//! Pipes are bound to peer *ids*, not addresses: "instead of counting upon a
//! fixed IP address, the protocol relies on a fixed UUID for each peer"
//! (the paper's Figure 5). A pipe-bind query asks "who currently has an input
//! pipe for pipe P?", and responders answer with their peer id and current
//! endpoints, allowing output pipes to (re-)resolve after crashes and address
//! changes.

use super::{required_child, ProtocolPayload};
use crate::error::JxtaError;
use crate::id::{PeerId, PipeId};
use crate::xml::XmlElement;
use simnet::SimAddress;

/// Asks which peers host an input pipe for `pipe_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeBindQuery {
    /// The pipe being resolved.
    pub pipe_id: PipeId,
    /// The peer asking.
    pub requester: PeerId,
}

impl ProtocolPayload for PipeBindQuery {
    const ROOT: &'static str = "jxta:PipeBindQuery";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("PipeId", self.pipe_id.to_string())
            .text_child("Requester", self.requester.to_string())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        Ok(PipeBindQuery {
            pipe_id: required_child(xml, "PipeId")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad pipe id: {e}")))?,
            requester: required_child(xml, "Requester")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad requester id: {e}")))?,
        })
    }
}

/// Announces that `peer` hosts an input pipe for `pipe_id`, reachable at
/// `endpoints`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeBindResponse {
    /// The pipe being resolved.
    pub pipe_id: PipeId,
    /// The peer hosting an input pipe.
    pub peer: PeerId,
    /// The hosting peer's current endpoints.
    pub endpoints: Vec<SimAddress>,
}

impl ProtocolPayload for PipeBindResponse {
    const ROOT: &'static str = "jxta:PipeBindResponse";

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT)
            .text_child("PipeId", self.pipe_id.to_string())
            .text_child("Peer", self.peer.to_string());
        let mut endpoints = XmlElement::new("Endpoints");
        for addr in &self.endpoints {
            endpoints.push_child(XmlElement::with_text("Addr", addr.to_string()));
        }
        root.push_child(endpoints);
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let pipe_id = required_child(xml, "PipeId")?
            .parse()
            .map_err(|e| JxtaError::BadXml(format!("bad pipe id: {e}")))?;
        let peer = required_child(xml, "Peer")?
            .parse()
            .map_err(|e| JxtaError::BadXml(format!("bad peer id: {e}")))?;
        let mut endpoints = Vec::new();
        if let Some(list) = xml.first_child("Endpoints") {
            for addr in list.children_named("Addr") {
                endpoints.push(
                    addr.text
                        .trim()
                        .parse()
                        .map_err(|e| JxtaError::BadXml(format!("bad endpoint: {e}")))?,
                );
            }
        }
        Ok(PipeBindResponse {
            pipe_id,
            peer,
            endpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TransportKind;

    #[test]
    fn query_roundtrips() {
        let q = PipeBindQuery {
            pipe_id: PipeId::derive("ski"),
            requester: PeerId::derive("alice"),
        };
        assert_eq!(PipeBindQuery::from_xml_string(&q.to_xml_string()).unwrap(), q);
    }

    #[test]
    fn response_roundtrips_with_endpoints() {
        let r = PipeBindResponse {
            pipe_id: PipeId::derive("ski"),
            peer: PeerId::derive("bob"),
            endpoints: vec![
                SimAddress::new(TransportKind::Tcp, 42, 9701),
                SimAddress::new(TransportKind::Http, 42, 9702),
            ],
        };
        let decoded = PipeBindResponse::from_xml_string(&r.to_xml_string()).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.endpoints.len(), 2);
    }

    #[test]
    fn malformed_is_rejected() {
        assert!(PipeBindQuery::from_xml_string("<jxta:PipeBindQuery/>").is_err());
        let bad = XmlElement::new(PipeBindResponse::ROOT)
            .text_child("PipeId", "garbage")
            .text_child("Peer", PeerId::derive("x").to_string());
        assert!(PipeBindResponse::from_xml(&bad).is_err());
    }
}
