//! Peer Information Protocol (PIP).
//!
//! Lets a peer query another peer's status: how long it has been up, how much
//! traffic it has handled on its incoming and outgoing channels (the paper's
//! Figure 3).

use super::{required_child, ProtocolPayload};
use crate::error::JxtaError;
use crate::id::PeerId;
use crate::xml::XmlElement;

/// A request for a peer's status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PingQuery {
    /// The peer whose information is requested.
    pub target: PeerId,
}

impl ProtocolPayload for PingQuery {
    const ROOT: &'static str = "jxta:PipQuery";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT).text_child("Target", self.target.to_string())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        Ok(PingQuery {
            target: required_child(xml, "Target")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad target peer: {e}")))?,
        })
    }
}

/// A peer's status, as returned by PIP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfoResponse {
    /// The peer the information describes.
    pub peer: PeerId,
    /// Time the peer has been up, in virtual milliseconds.
    pub uptime_ms: u64,
    /// Messages sent on outgoing channels.
    pub messages_sent: u64,
    /// Messages received on incoming channels.
    pub messages_received: u64,
    /// Bytes sent on outgoing channels.
    pub bytes_sent: u64,
    /// Bytes received on incoming channels.
    pub bytes_received: u64,
}

impl ProtocolPayload for PeerInfoResponse {
    const ROOT: &'static str = "jxta:PipResponse";

    fn to_xml(&self) -> XmlElement {
        XmlElement::new(Self::ROOT)
            .text_child("Peer", self.peer.to_string())
            .text_child("Uptime", self.uptime_ms.to_string())
            .text_child("Sent", self.messages_sent.to_string())
            .text_child("Received", self.messages_received.to_string())
            .text_child("BytesSent", self.bytes_sent.to_string())
            .text_child("BytesReceived", self.bytes_received.to_string())
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let parse_u64 = |name: &str| -> Result<u64, JxtaError> {
            required_child(xml, name)?
                .parse()
                .map_err(|_| JxtaError::BadXml(format!("bad numeric field {name}")))
        };
        Ok(PeerInfoResponse {
            peer: required_child(xml, "Peer")?
                .parse()
                .map_err(|e| JxtaError::BadXml(format!("bad peer id: {e}")))?,
            uptime_ms: parse_u64("Uptime")?,
            messages_sent: parse_u64("Sent")?,
            messages_received: parse_u64("Received")?,
            bytes_sent: parse_u64("BytesSent")?,
            bytes_received: parse_u64("BytesReceived")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrips() {
        let q = PingQuery {
            target: PeerId::derive("bob"),
        };
        assert_eq!(PingQuery::from_xml_string(&q.to_xml_string()).unwrap(), q);
    }

    #[test]
    fn response_roundtrips() {
        let r = PeerInfoResponse {
            peer: PeerId::derive("bob"),
            uptime_ms: 123_456,
            messages_sent: 10,
            messages_received: 20,
            bytes_sent: 1_000,
            bytes_received: 2_000,
        };
        assert_eq!(PeerInfoResponse::from_xml_string(&r.to_xml_string()).unwrap(), r);
    }

    #[test]
    fn rejects_bad_numbers() {
        let bad = XmlElement::new(PeerInfoResponse::ROOT)
            .text_child("Peer", PeerId::derive("bob").to_string())
            .text_child("Uptime", "yesterday");
        assert!(PeerInfoResponse::from_xml(&bad).is_err());
    }
}
