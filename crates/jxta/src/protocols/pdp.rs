//! Peer Discovery Protocol (PDP).
//!
//! Discovery queries ask "send me up to `threshold` advertisements of kind K
//! whose attribute matches this pattern"; responders consult their local
//! cache and reply with the matching advertisements. The querying peer embeds
//! its own peer advertisement so that responders know how to reach it even if
//! they have never seen it before (the paper's Figure 1).

use super::{required_child, ProtocolPayload};
use crate::adv::{AdvKind, Advertisement, AnyAdvertisement, PeerAdvertisement};
use crate::cm::SearchFilter;
use crate::error::JxtaError;
use crate::xml::XmlElement;

/// A discovery query.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryQuery {
    /// The category of advertisements requested.
    pub kind: AdvKind,
    /// The attribute/value filter.
    pub filter: SearchFilter,
    /// Maximum number of advertisements the responder should return
    /// (`NUMBER_OF_ADV_PER_PEER` in the paper's `AdvertisementsFinder`).
    pub threshold: usize,
    /// The querying peer's advertisement (so responders can reach it).
    pub requester: PeerAdvertisement,
}

impl DiscoveryQuery {
    /// Creates a query for advertisements of `kind` matching `filter`.
    pub fn new(kind: AdvKind, filter: SearchFilter, threshold: usize, requester: PeerAdvertisement) -> Self {
        DiscoveryQuery {
            kind,
            filter,
            threshold,
            requester,
        }
    }
}

fn kind_to_str(kind: AdvKind) -> &'static str {
    match kind {
        AdvKind::Peer => "PEER",
        AdvKind::Group => "GROUP",
        AdvKind::Adv => "ADV",
    }
}

fn kind_from_str(s: &str) -> Result<AdvKind, JxtaError> {
    match s {
        "PEER" => Ok(AdvKind::Peer),
        "GROUP" => Ok(AdvKind::Group),
        "ADV" => Ok(AdvKind::Adv),
        other => Err(JxtaError::BadXml(format!("unknown advertisement kind {other}"))),
    }
}

impl ProtocolPayload for DiscoveryQuery {
    const ROOT: &'static str = "jxta:DiscoveryQuery";

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT)
            .text_child("Kind", kind_to_str(self.kind))
            .text_child("Threshold", self.threshold.to_string())
            .text_child("Value", self.filter.value.clone());
        if let Some(attr) = &self.filter.attribute {
            root.push_child(XmlElement::with_text("Attr", attr.clone()));
        }
        root.push_child(self.requester.to_xml());
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let kind = kind_from_str(required_child(xml, "Kind")?)?;
        let threshold = required_child(xml, "Threshold")?
            .parse()
            .map_err(|_| JxtaError::BadXml("bad threshold".into()))?;
        let filter = SearchFilter {
            attribute: xml.child_text("Attr").map(str::to_owned),
            value: xml.child_text_or_empty("Value").to_owned(),
        };
        let requester_xml = xml
            .first_child(PeerAdvertisement::ROOT)
            .ok_or_else(|| JxtaError::MissingElement(PeerAdvertisement::ROOT.to_owned()))?;
        let requester = PeerAdvertisement::from_xml(requester_xml)?;
        Ok(DiscoveryQuery {
            kind,
            filter,
            threshold,
            requester,
        })
    }
}

/// A discovery response: the advertisements that matched.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryResponse {
    /// The category of the returned advertisements.
    pub kind: AdvKind,
    /// The matching advertisements.
    pub advertisements: Vec<AnyAdvertisement>,
    /// The responder's own peer advertisement (piggy-backed so requesters
    /// passively learn about peers, as JXTA does).
    pub responder: PeerAdvertisement,
}

impl DiscoveryResponse {
    /// Creates a response.
    pub fn new(kind: AdvKind, advertisements: Vec<AnyAdvertisement>, responder: PeerAdvertisement) -> Self {
        DiscoveryResponse {
            kind,
            advertisements,
            responder,
        }
    }
}

impl ProtocolPayload for DiscoveryResponse {
    const ROOT: &'static str = "jxta:DiscoveryResponse";

    fn to_xml(&self) -> XmlElement {
        let mut root = XmlElement::new(Self::ROOT).text_child("Kind", kind_to_str(self.kind));
        let mut advs = XmlElement::new("Advs");
        for adv in &self.advertisements {
            advs.push_child(XmlElement::with_text("Adv", adv.to_xml_string()));
        }
        root.push_child(advs);
        root.push_child(self.responder.to_xml());
        root
    }

    fn from_xml(xml: &XmlElement) -> Result<Self, JxtaError> {
        let kind = kind_from_str(required_child(xml, "Kind")?)?;
        let mut advertisements = Vec::new();
        if let Some(list) = xml.first_child("Advs") {
            for adv in list.children_named("Adv") {
                advertisements.push(AnyAdvertisement::parse(adv.text.trim())?);
            }
        }
        let responder_xml = xml
            .first_child(PeerAdvertisement::ROOT)
            .ok_or_else(|| JxtaError::MissingElement(PeerAdvertisement::ROOT.to_owned()))?;
        let responder = PeerAdvertisement::from_xml(responder_xml)?;
        Ok(DiscoveryResponse {
            kind,
            advertisements,
            responder,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::{PeerGroupAdvertisement, PipeAdvertisement, PipeType};
    use crate::id::{PeerGroupId, PeerId, PipeId};

    fn requester() -> PeerAdvertisement {
        PeerAdvertisement::new(PeerId::derive("alice"), "alice", PeerGroupId::world())
    }

    #[test]
    fn query_roundtrips() {
        let q = DiscoveryQuery::new(AdvKind::Group, SearchFilter::by_name("ps-*"), 10, requester());
        let decoded = DiscoveryQuery::from_xml_string(&q.to_xml_string()).unwrap();
        assert_eq!(decoded, q);
        assert_eq!(decoded.filter.attribute.as_deref(), Some("Name"));
    }

    #[test]
    fn query_without_attribute_matches_everything() {
        let q = DiscoveryQuery::new(AdvKind::Adv, SearchFilter::any(), 5, requester());
        let decoded = DiscoveryQuery::from_xml_string(&q.to_xml_string()).unwrap();
        assert_eq!(decoded.filter, SearchFilter::any());
    }

    #[test]
    fn response_roundtrips_with_nested_advertisements() {
        let group: AnyAdvertisement =
            PeerGroupAdvertisement::new(PeerGroupId::derive("g"), "ps-SkiRental", PeerId::derive("x")).into();
        let pipe: AnyAdvertisement =
            PipeAdvertisement::new(PipeId::derive("p"), "SkiRental", PipeType::JxtaWire).into();
        let r = DiscoveryResponse::new(AdvKind::Group, vec![group, pipe], requester());
        let decoded = DiscoveryResponse::from_xml_string(&r.to_xml_string()).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.advertisements.len(), 2);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(DiscoveryQuery::from_xml_string("<jxta:DiscoveryQuery/>").is_err());
        let missing_requester = XmlElement::new(DiscoveryQuery::ROOT)
            .text_child("Kind", "GROUP")
            .text_child("Threshold", "3")
            .text_child("Value", "*");
        assert!(DiscoveryQuery::from_xml(&missing_requester).is_err());
        let bad_kind = XmlElement::new(DiscoveryResponse::ROOT).text_child("Kind", "SOMETHING");
        assert!(DiscoveryResponse::from_xml(&bad_kind).is_err());
    }
}
