//! Flyweight edge peers: the mega-scale subscriber representation.
//!
//! A full [`crate::JxtaPeer`] carries the six protocols, a cache manager, a
//! resolver, per-peer route tables and a metrics surface — hundreds of bytes
//! of state plus per-event codec work. None of that is needed to *measure*
//! dissemination at 100k subscribers: the paper's edge devices only lease
//! with a rendezvous and consume events. A [`FlyweightEdge`] is exactly that
//! residue — a lease, a subscription record and a mailbox — implemented
//! directly as a [`simnet::SimNode`] so a hundred thousand of them fit in a
//! few MB and cost nothing when idle.
//!
//! The flyweight speaks the real wire protocol (it sends a genuine
//! [`WireMessage::RendezvousConnect`] and parses the
//! [`WireMessage::RendezvousLease`] and [`WireMessage::WireData`] envelopes
//! the rendezvous produces), so the rendezvous side needs no changes and no
//! test-only back doors: from the mesh's point of view a flyweight is just
//! another leased client.

use crate::endpoint::WireMessage;
use crate::id::{PeerGroupId, PeerId, PipeId, Uuid};
use crate::peer::is_jxta_timer;
use crate::PeerAdvertisement;
use simnet::{Datagram, NodeContext, SimAddress, SimDuration, SimNode, SimTime, TimerToken};
use std::any::Any;
use std::collections::{HashSet, VecDeque};

/// Timer tag for the flyweight's renewal housekeeping. Lives in the JXTA
/// timer namespace (see [`is_jxta_timer`]) so harnesses that route timers by
/// namespace keep working unchanged.
pub const TIMER_FLYWEIGHT: u64 = 0x4A58_0002;

/// How often the flyweight wakes up to check its lease. Deliberately coarse:
/// a scale run covering tens of virtual seconds schedules *zero* renewal
/// events per subscriber, which is what keeps the 100k-node event queue
/// dominated by actual deliveries.
const HOUSEKEEPING_INTERVAL: SimDuration = SimDuration::from_secs(45);

/// Renew when the lease has less than this long to live. With the default
/// 120 s lease and a 45 s tick, renewal lands on the tick at t=90 s.
const RENEW_MARGIN: SimDuration = SimDuration::from_secs(60);

/// Duplicate-suppression window. Small on purpose: a flyweight only sees the
/// traffic its own rendezvous fans down, where duplicates are adjacent
/// (mesh relay races), so a short window suffices and 100k of them stay
/// cheap. Eviction is strictly oldest-first (FIFO), independent of hash
/// order, so replays are bit-identical.
const SEEN_WINDOW: usize = 64;

/// The lease a flyweight holds with its home rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlyweightLease {
    /// The rendezvous that granted the lease.
    pub rdv: PeerId,
    /// The address the grant arrived from — where renewals go.
    pub addr: SimAddress,
    /// When the lease lapses.
    pub expires_at: SimTime,
}

/// A minimal subscriber: lease + subscription record + mailbox.
///
/// Compare with a full [`crate::JxtaPeer`]: no resolver, no cache manager,
/// no route table, no metrics registry, no trace collector. The only
/// behaviour kept is the client half of the rendezvous lease protocol and
/// pipe-filtered consumption of [`WireMessage::WireData`].
#[derive(Debug)]
pub struct FlyweightEdge {
    peer_id: PeerId,
    name: String,
    /// Rendezvous seed addresses; the home shard is picked by the same
    /// ring formula as [`crate::JxtaPeer`] so both peer kinds land on the
    /// same rendezvous for the same name.
    seeds: Vec<SimAddress>,
    /// Shard count of the rendezvous mesh (`mesh_shards` in dissemination
    /// config terms).
    shards: usize,
    /// The single pipe this edge subscribes to.
    pipe: PipeId,
    lease: Option<FlyweightLease>,
    /// A connect is in flight and unanswered.
    connect_pending: bool,
    /// Ring-walk offset, advanced when the home rendezvous does not answer
    /// (mirrors the full peer's failover so dead shards heal the same way).
    failover_attempts: u64,
    seen: HashSet<Uuid>,
    seen_order: VecDeque<Uuid>,
    /// Every accepted event: `(delivery time, message id)` in arrival order.
    mailbox: Vec<(SimTime, Uuid)>,
    duplicates: u64,
    connects_sent: u64,
}

impl FlyweightEdge {
    /// Creates a flyweight subscribed to `pipe`, leasing with one of
    /// `seeds` (sharded by peer id over `shards` ring slots, exactly like a
    /// full peer under the rendezvous mesh strategy).
    pub fn new(name: impl Into<String>, seeds: Vec<SimAddress>, shards: usize, pipe: PipeId) -> Self {
        let name = name.into();
        FlyweightEdge {
            peer_id: PeerId::derive(&name),
            name,
            seeds,
            shards: shards.max(1),
            pipe,
            lease: None,
            connect_pending: false,
            failover_attempts: 0,
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            mailbox: Vec::new(),
            duplicates: 0,
            connects_sent: 0,
        }
    }

    /// This edge's peer id (`PeerId::derive(name)`, same scheme as
    /// [`crate::PeerConfig`]).
    pub fn peer_id(&self) -> PeerId {
        self.peer_id
    }

    /// The edge's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lease currently held, if any.
    pub fn lease(&self) -> Option<&FlyweightLease> {
        self.lease.as_ref()
    }

    /// Accepted events in arrival order: `(delivery time, message id)`.
    pub fn mailbox(&self) -> &[(SimTime, Uuid)] {
        &self.mailbox
    }

    /// Events accepted (mailbox length).
    pub fn received_count(&self) -> usize {
        self.mailbox.len()
    }

    /// Duplicates suppressed by the seen-window.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Connect requests sent (initial + renewals + failovers).
    pub fn connects_sent(&self) -> u64 {
        self.connects_sent
    }

    fn send_connect(&mut self, ctx: &mut NodeContext<'_>) {
        // Same reachability filter and ring formula as the full peer's
        // `connect_to_rendezvous`: hash onto a home shard among the usable
        // seeds, then walk the ring by the failover offset.
        let usable: Vec<SimAddress> = self
            .seeds
            .iter()
            .copied()
            .filter(|seed| ctx.local_address(seed.transport).is_some())
            .collect();
        if usable.is_empty() {
            return;
        }
        let shards = usable.len().min(self.shards);
        let home = dissem::shard_index(self.peer_id.0 .0, shards);
        let target = usable[(home + self.failover_attempts as usize) % shards];
        let endpoints: Vec<SimAddress> = ctx
            .local_addresses()
            .iter()
            .copied()
            .filter(|a| a.transport.is_point_to_point())
            .collect();
        let adv = PeerAdvertisement::new(self.peer_id, self.name.clone(), PeerGroupId::net())
            .with_endpoints(endpoints);
        let wm = WireMessage::RendezvousConnect { peer: adv };
        let _ = ctx.send(target, wm.to_bytes());
        self.connect_pending = true;
        self.connects_sent += 1;
    }

    fn note_seen(&mut self, msg_id: Uuid) -> bool {
        if self.seen.contains(&msg_id) {
            return false;
        }
        if self.seen_order.len() == SEEN_WINDOW {
            if let Some(evicted) = self.seen_order.pop_front() {
                self.seen.remove(&evicted);
            }
        }
        self.seen.insert(msg_id);
        self.seen_order.push_back(msg_id);
        true
    }
}

impl SimNode for FlyweightEdge {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.send_connect(ctx);
        ctx.set_timer(HOUSEKEEPING_INTERVAL, TIMER_FLYWEIGHT);
    }

    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, datagram: Datagram) {
        let Ok(wm) = WireMessage::from_bytes(&datagram.payload) else {
            return;
        };
        match wm {
            WireMessage::RendezvousLease {
                rdv,
                granted: true,
                lease_ms,
            } => {
                self.lease = Some(FlyweightLease {
                    rdv,
                    addr: datagram.src_addr,
                    expires_at: ctx.now() + SimDuration::from_millis(lease_ms),
                });
                self.connect_pending = false;
            }
            WireMessage::WireData(packet) => {
                if packet.pipe_id != self.pipe || packet.src_peer == self.peer_id {
                    return;
                }
                if self.note_seen(packet.msg_id) {
                    self.mailbox.push((ctx.now(), packet.msg_id));
                } else {
                    self.duplicates += 1;
                }
            }
            // Refusals, resolver traffic, publishes: a flyweight has no use
            // for any of it.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
        if !is_jxta_timer(tag) {
            return;
        }
        // A lapsed lease is no lease: dropping it here lets the failover
        // branch below advance the ring instead of waiting on a rendezvous
        // that stopped answering.
        if self.lease.is_some_and(|lease| ctx.now() >= lease.expires_at) {
            self.lease = None;
        }
        let needs_lease = match self.lease {
            None => true,
            Some(lease) => ctx.now() + RENEW_MARGIN >= lease.expires_at,
        };
        if needs_lease {
            if self.connect_pending && self.lease.is_none() {
                // The previous connect went unanswered: walk the ring to the
                // next shard, like the full peer's failover.
                self.failover_attempts += 1;
            }
            self.send_connect(ctx);
        }
        ctx.set_timer(HOUSEKEEPING_INTERVAL, TIMER_FLYWEIGHT);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_window_is_bounded_and_fifo() {
        let mut edge = FlyweightEdge::new(
            "edge-0",
            vec![SimAddress::new(simnet::TransportKind::Tcp, 1, 9701)],
            1,
            PipeId::derive("SkiRental"),
        );
        // Fill well past the window; memory must stay bounded.
        for i in 0..10 * SEEN_WINDOW as u64 {
            assert!(edge.note_seen(Uuid(i as u128 + 1)));
        }
        assert_eq!(edge.seen.len(), SEEN_WINDOW);
        assert_eq!(edge.seen_order.len(), SEEN_WINDOW);
        // The newest SEEN_WINDOW ids are still rejected as duplicates...
        let newest = 10 * SEEN_WINDOW as u64;
        assert!(!edge.note_seen(Uuid(newest as u128)));
        // ...while an id evicted oldest-first is accepted again.
        assert!(edge.note_seen(Uuid(1)));
    }

    #[test]
    fn flyweight_state_is_small() {
        // The whole point of the flyweight: the per-subscriber footprint
        // must stay in flyweight territory. This bounds the *inline* struct
        // size; heap state is bounded by SEEN_WINDOW and the mailbox.
        assert!(std::mem::size_of::<FlyweightEdge>() <= 256);
    }
}
