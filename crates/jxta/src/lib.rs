//! # jxta — a from-scratch Rust implementation of the JXTA P2P substrate
//!
//! This crate re-implements the parts of Sun's JXTA 1.0 specification that the
//! paper *"OS Support for P2P Programming: a Case for TPS"* (ICDCS 2002)
//! builds on: identifiers, XML advertisements, messages, the six protocols
//! (PDP, PRP, PIP, PMP, PBP, ERP) and the service layer (discovery, resolver,
//! rendezvous, membership, pipes and the many-to-many wire service), all
//! running on the [`simnet`] discrete-event network simulator.
//!
//! The central type is [`peer::JxtaPeer`]: one instance per simulated device,
//! embedded in an application node. Applications forward their node's
//! lifecycle hooks to the peer and drain [`events::JxtaEvent`]s from it; the
//! TPS layer (crate `tps`) is exactly such an application.
//!
//! ```
//! use jxta::peer::{JxtaPeer, PeerConfig};
//!
//! let peer = JxtaPeer::new(PeerConfig::edge("alice"));
//! assert!(!peer.is_started());
//! assert_eq!(peer.peer_id(), JxtaPeer::new(PeerConfig::edge("alice")).peer_id());
//! ```
#![warn(rust_2018_idioms)]

pub mod adv;
pub mod cm;
pub mod endpoint;
pub mod error;
pub mod events;
pub mod flyweight;
pub mod id;
pub mod message;
pub mod peer;
pub mod peergroup;
pub mod protocols;
pub mod services;
pub mod xml;

pub use dissem;
pub use dissem::{DisseminationConfig, RebalanceConfig, StrategyKind};
pub use telemetry;
pub use telemetry::{LoadReport, MetricsRegistry, MetricsSnapshot};

pub use adv::{
    AdvKind, Advertisement, AnyAdvertisement, PeerAdvertisement, PeerGroupAdvertisement, PipeAdvertisement,
    PipeType, ServiceAdvertisement,
};
pub use cm::SearchFilter;
pub use error::JxtaError;
pub use events::JxtaEvent;
pub use flyweight::{FlyweightEdge, FlyweightLease, TIMER_FLYWEIGHT};
pub use id::{PeerGroupId, PeerId, PipeId, QueryId, Uuid};
pub use message::{Message, MessageElement};
pub use peer::{
    is_jxta_timer, trace_handle, CostModel, JxtaPeer, PeerConfig, SharedTraceCollector, TIMER_HOUSEKEEPING,
};
pub use peergroup::{PeerGroup, PS_PREFIX, WIRE_SERVICE_NAME};
