//! Peer groups.
//!
//! A peer group scopes resources and services. The reproduction models a
//! group as its advertisement plus lookup helpers, and provides the exact
//! construction the paper's `AdvertisementsCreator` performs: one group per
//! event type, named `ps-<TypeName>`, containing a wire service whose pipe is
//! named after the type.

use crate::adv::{
    MembershipPolicy, PeerGroupAdvertisement, PipeAdvertisement, PipeType, ServiceAdvertisement,
};
use crate::error::JxtaError;
use crate::id::{PeerGroupId, PeerId, PipeId};

/// The prefix prepended to publish/subscribe group names (the paper's
/// `PS_PREFIX`).
pub const PS_PREFIX: &str = "ps-";
/// The well-known name of the wire service inside a group.
pub const WIRE_SERVICE_NAME: &str = "jxta.service.wire";
/// The well-known name of the resolver service inside a group.
pub const RESOLVER_SERVICE_NAME: &str = "jxta.service.resolver";

/// A runtime view of a peer group: its advertisement plus service lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerGroup {
    advertisement: PeerGroupAdvertisement,
}

impl PeerGroup {
    /// Wraps an existing group advertisement.
    pub fn from_advertisement(advertisement: PeerGroupAdvertisement) -> Self {
        PeerGroup { advertisement }
    }

    /// Builds the publish/subscribe group for an event type, exactly as the
    /// paper's `AdvertisementsCreator.createPeerGroupAdvertisement` does:
    ///
    /// 1. a [`PipeAdvertisement`] whose *name is the type name*,
    /// 2. a wire [`ServiceAdvertisement`] embedding that pipe,
    /// 3. a resolver service advertisement carrying the creator's peer id,
    /// 4. a [`PeerGroupAdvertisement`] named `ps-<TypeName>` containing both.
    pub fn for_event_type(type_name: &str, creator: PeerId) -> Self {
        let pipe_id = PipeId::derive(type_name);
        let group_id = PeerGroupId::derive(&format!("{PS_PREFIX}{type_name}"));
        let pipe = PipeAdvertisement::new(pipe_id, type_name, PipeType::JxtaWire);

        let wire = ServiceAdvertisement::new(WIRE_SERVICE_NAME)
            .with_pipe(pipe)
            .with_keywords(type_name)
            .with_version("1.0");

        let mut resolver = ServiceAdvertisement::new(RESOLVER_SERVICE_NAME);
        resolver.push_param(creator.to_string());

        let mut advertisement =
            PeerGroupAdvertisement::new(group_id, format!("{PS_PREFIX}{type_name}"), creator)
                .with_rendezvous(true)
                .with_membership(MembershipPolicy::Open);
        advertisement.put_service(wire);
        advertisement.put_service(resolver);
        PeerGroup { advertisement }
    }

    /// The group's advertisement.
    pub fn advertisement(&self) -> &PeerGroupAdvertisement {
        &self.advertisement
    }

    /// The group's id.
    pub fn group_id(&self) -> PeerGroupId {
        self.advertisement.group_id
    }

    /// The group's name.
    pub fn name(&self) -> &str {
        &self.advertisement.name
    }

    /// Looks up a service by name (the paper's `lookupService`).
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError::ServiceNotFound`] when the group advertisement
    /// has no such service.
    pub fn lookup_service(&self, name: &str) -> Result<&ServiceAdvertisement, JxtaError> {
        self.advertisement
            .service(name)
            .ok_or_else(|| JxtaError::ServiceNotFound(name.to_owned()))
    }

    /// The wire pipe of the group's wire service, if present (the paper's
    /// `WireServiceFinder.getPipeAdvertisement`).
    ///
    /// # Errors
    ///
    /// Returns [`JxtaError::ServiceNotFound`] when the group has no wire
    /// service, or [`JxtaError::UnknownPipe`] when the wire service has no
    /// pipe attached.
    pub fn wire_pipe(&self) -> Result<&PipeAdvertisement, JxtaError> {
        let wire = self.lookup_service(WIRE_SERVICE_NAME)?;
        wire.pipe
            .as_ref()
            .ok_or_else(|| JxtaError::UnknownPipe(format!("wire service of {} has no pipe", self.name())))
    }

    /// The event type name this publish/subscribe group was created for, if
    /// its name carries the `ps-` prefix.
    pub fn event_type_name(&self) -> Option<&str> {
        self.advertisement.name.strip_prefix(PS_PREFIX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::Advertisement;

    #[test]
    fn event_type_group_has_expected_structure() {
        let group = PeerGroup::for_event_type("SkiRental", PeerId::derive("shop"));
        assert_eq!(group.name(), "ps-SkiRental");
        assert_eq!(group.event_type_name(), Some("SkiRental"));
        let pipe = group.wire_pipe().unwrap();
        assert_eq!(pipe.name, "SkiRental");
        assert_eq!(pipe.pipe_type, PipeType::JxtaWire);
        let resolver = group.lookup_service(RESOLVER_SERVICE_NAME).unwrap();
        assert_eq!(resolver.params, vec![PeerId::derive("shop").to_string()]);
    }

    #[test]
    fn group_ids_are_deterministic_per_type() {
        let a = PeerGroup::for_event_type("SkiRental", PeerId::derive("shop-a"));
        let b = PeerGroup::for_event_type("SkiRental", PeerId::derive("shop-b"));
        // Different creators converge on the same group and pipe for a type,
        // which is what lets independently-started publishers and subscribers
        // find each other ("minimisation of the number of advertisements").
        assert_eq!(a.group_id(), b.group_id());
        assert_eq!(a.wire_pipe().unwrap().pipe_id, b.wire_pipe().unwrap().pipe_id);
    }

    #[test]
    fn lookup_of_missing_service_errors() {
        let group = PeerGroup::for_event_type("SkiRental", PeerId::derive("shop"));
        assert!(group.lookup_service("jxta.service.cms").is_err());
    }

    #[test]
    fn wire_pipe_requires_a_pipe() {
        let mut adv = PeerGroup::for_event_type("X", PeerId::derive("c"))
            .advertisement()
            .clone();
        adv.put_service(ServiceAdvertisement::new(WIRE_SERVICE_NAME)); // no pipe
        let group = PeerGroup::from_advertisement(adv);
        assert!(group.wire_pipe().is_err());
    }

    #[test]
    fn group_advertisement_roundtrips_through_xml() {
        let group = PeerGroup::for_event_type("SkiRental", PeerId::derive("shop"));
        let xml = group.advertisement().to_xml();
        let parsed = PeerGroupAdvertisement::from_xml(&xml).unwrap();
        assert_eq!(&parsed, group.advertisement());
    }

    #[test]
    fn non_ps_groups_have_no_event_type() {
        let adv = PeerGroupAdvertisement::new(PeerGroupId::world(), "World", PeerId::derive("x"));
        assert_eq!(PeerGroup::from_advertisement(adv).event_type_name(), None);
    }
}
