//! The local advertisement cache ("cm" — content manager — in JXTA).
//!
//! Every peer keeps discovered and locally-published advertisements in this
//! cache. Entries age: each carries an expiration instant, and expired
//! entries are purged lazily on access and periodically by the peer's
//! housekeeping timer, which is how stale advertisements (e.g. a peer's old
//! addresses) eventually disappear — the paper's "age to distinguish stale
//! advertisements from new ones".

use crate::adv::{AdvKind, AnyAdvertisement};
use simnet::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Default lifetime for advertisements published by the local peer.
pub const DEFAULT_LOCAL_LIFETIME: SimDuration = SimDuration::from_secs(60 * 60);
/// Default lifetime for advertisements learned from other peers.
pub const DEFAULT_REMOTE_LIFETIME: SimDuration = SimDuration::from_secs(15 * 60);

#[derive(Debug, Clone)]
struct CachedAdv {
    adv: AnyAdvertisement,
    published_at: SimTime,
    expires_at: SimTime,
}

/// A search filter for cache lookups: an attribute name and a value pattern.
///
/// Only the attributes JXTA discovery actually uses are supported: `"Name"`
/// (the advertisement's display name) and `"Id"` (its unique key). A trailing
/// `*` in the value makes the match a prefix match, mirroring the paper's
/// `getRemoteAdvertisements(null, GROUP, "Name", prefix + "*", ...)` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchFilter {
    /// The attribute to match (`"Name"` or `"Id"`), or `None` to match all.
    pub attribute: Option<String>,
    /// The value pattern (exact, or prefix if it ends with `*`).
    pub value: String,
}

impl SearchFilter {
    /// Matches every advertisement.
    pub fn any() -> Self {
        SearchFilter {
            attribute: None,
            value: String::new(),
        }
    }

    /// Matches advertisements whose display name matches `pattern`.
    pub fn by_name(pattern: impl Into<String>) -> Self {
        SearchFilter {
            attribute: Some("Name".to_owned()),
            value: pattern.into(),
        }
    }

    /// Matches advertisements whose unique key matches `pattern`.
    pub fn by_id(pattern: impl Into<String>) -> Self {
        SearchFilter {
            attribute: Some("Id".to_owned()),
            value: pattern.into(),
        }
    }

    /// Whether `adv` satisfies this filter.
    pub fn matches(&self, adv: &AnyAdvertisement) -> bool {
        let Some(attribute) = &self.attribute else {
            return true;
        };
        let candidate = match attribute.as_str() {
            "Name" => adv.display_name(),
            "Id" => adv.unique_key(),
            _ => return false,
        };
        match_pattern(&self.value, &candidate)
    }
}

/// Pattern matching used by discovery: exact match, or prefix match when the
/// pattern ends with `*`, or match-everything for a bare `*`.
pub fn match_pattern(pattern: &str, candidate: &str) -> bool {
    if pattern == "*" || pattern.is_empty() {
        return true;
    }
    if let Some(prefix) = pattern.strip_suffix('*') {
        candidate.starts_with(prefix)
    } else {
        candidate == pattern
    }
}

/// The per-peer advertisement cache.
///
/// Both levels are ordered maps: `search`/`expire` walk them, and discovery
/// responses assembled from a walk feed directly into wire traffic — the
/// determinism contract forbids hash order there.
#[derive(Debug, Default)]
pub struct CacheManager {
    entries: BTreeMap<AdvKind, BTreeMap<String, CachedAdv>>,
}

impl CacheManager {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CacheManager::default()
    }

    /// Inserts or refreshes an advertisement with the given lifetime.
    ///
    /// Returns `true` if the advertisement was not previously cached (i.e. it
    /// is "new" from this peer's point of view — the signal the discovery
    /// service uses to raise `AdvertisementDiscovered` events exactly once).
    pub fn publish(&mut self, adv: AnyAdvertisement, now: SimTime, lifetime: SimDuration) -> bool {
        let key = adv.unique_key();
        let kind = adv.kind();
        let slot = self.entries.entry(kind).or_default();
        let is_new = !slot.contains_key(&key);
        slot.insert(
            key,
            CachedAdv {
                adv,
                published_at: now,
                expires_at: now + lifetime,
            },
        );
        is_new
    }

    /// Whether an advertisement with this kind and unique key is cached and
    /// not yet expired.
    pub fn contains(&self, kind: AdvKind, key: &str, now: SimTime) -> bool {
        self.entries
            .get(&kind)
            .and_then(|m| m.get(key))
            .is_some_and(|c| c.expires_at > now)
    }

    /// Returns all live advertisements of `kind` matching `filter`.
    pub fn search(&self, kind: AdvKind, filter: &SearchFilter, now: SimTime) -> Vec<AnyAdvertisement> {
        let Some(slot) = self.entries.get(&kind) else {
            return Vec::new();
        };
        // BTreeMap iteration is already key-ordered — deterministic without
        // an explicit sort.
        slot.values()
            .filter(|c| c.expires_at > now && filter.matches(&c.adv))
            .map(|c| c.adv.clone())
            .collect()
    }

    /// Returns all live advertisements of `kind`.
    pub fn all(&self, kind: AdvKind, now: SimTime) -> Vec<AnyAdvertisement> {
        self.search(kind, &SearchFilter::any(), now)
    }

    /// The age of a cached advertisement, if present.
    pub fn age(&self, kind: AdvKind, key: &str, now: SimTime) -> Option<SimDuration> {
        self.entries
            .get(&kind)
            .and_then(|m| m.get(key))
            .map(|c| now.saturating_since(c.published_at))
    }

    /// Discards every advertisement of `kind`; with `None`, the entire cache
    /// (the paper's `flushAdvertisements(null, ...)` calls).
    pub fn flush(&mut self, kind: Option<AdvKind>) {
        match kind {
            Some(kind) => {
                self.entries.remove(&kind);
            }
            None => self.entries.clear(),
        }
    }

    /// Removes expired entries; returns how many were removed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        for slot in self.entries.values_mut() {
            let before = slot.len();
            slot.retain(|_, c| c.expires_at > now);
            removed += before - slot.len();
        }
        removed
    }

    /// The number of live entries of a kind.
    pub fn len(&self, kind: AdvKind, now: SimTime) -> usize {
        self.entries
            .get(&kind)
            .map_or(0, |m| m.values().filter(|c| c.expires_at > now).count())
    }

    /// Whether the cache holds no live entries at all.
    pub fn is_empty(&self, now: SimTime) -> bool {
        AdvKind::ALL.iter().all(|k| self.len(*k, now) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adv::{PeerGroupAdvertisement, PipeAdvertisement, PipeType};
    use crate::id::{PeerGroupId, PeerId, PipeId};

    fn group(name: &str) -> AnyAdvertisement {
        PeerGroupAdvertisement::new(PeerGroupId::derive(name), name, PeerId::derive("creator")).into()
    }

    fn pipe(name: &str) -> AnyAdvertisement {
        PipeAdvertisement::new(PipeId::derive(name), name, PipeType::JxtaWire).into()
    }

    #[test]
    fn publish_reports_newness_once() {
        let mut cm = CacheManager::new();
        let now = SimTime::ZERO;
        assert!(cm.publish(group("ps-SkiRental"), now, DEFAULT_LOCAL_LIFETIME));
        assert!(!cm.publish(group("ps-SkiRental"), now, DEFAULT_LOCAL_LIFETIME));
        assert_eq!(cm.len(AdvKind::Group, now), 1);
    }

    #[test]
    fn search_by_name_prefix() {
        let mut cm = CacheManager::new();
        let now = SimTime::ZERO;
        cm.publish(group("ps-SkiRental"), now, DEFAULT_LOCAL_LIFETIME);
        cm.publish(group("ps-Weather"), now, DEFAULT_LOCAL_LIFETIME);
        cm.publish(group("other"), now, DEFAULT_LOCAL_LIFETIME);
        let hits = cm.search(AdvKind::Group, &SearchFilter::by_name("ps-*"), now);
        assert_eq!(hits.len(), 2);
        let exact = cm.search(AdvKind::Group, &SearchFilter::by_name("ps-Weather"), now);
        assert_eq!(exact.len(), 1);
        let all = cm.search(AdvKind::Group, &SearchFilter::any(), now);
        assert_eq!(all.len(), 3);
        let wrong_kind = cm.search(AdvKind::Adv, &SearchFilter::any(), now);
        assert!(wrong_kind.is_empty());
    }

    #[test]
    fn expiration_removes_entries() {
        let mut cm = CacheManager::new();
        cm.publish(pipe("SkiRental"), SimTime::ZERO, SimDuration::from_secs(10));
        let later = SimTime::from_secs(11);
        assert!(!cm.contains(AdvKind::Adv, &pipe("SkiRental").unique_key(), later));
        assert_eq!(cm.search(AdvKind::Adv, &SearchFilter::any(), later).len(), 0);
        assert_eq!(cm.expire(later), 1);
        assert!(cm.is_empty(later));
    }

    #[test]
    fn age_tracks_publication_time() {
        let mut cm = CacheManager::new();
        let adv = pipe("SkiRental");
        cm.publish(adv.clone(), SimTime::from_secs(5), DEFAULT_LOCAL_LIFETIME);
        let age = cm
            .age(AdvKind::Adv, &adv.unique_key(), SimTime::from_secs(9))
            .unwrap();
        assert_eq!(age, SimDuration::from_secs(4));
        assert!(cm.age(AdvKind::Adv, "missing", SimTime::ZERO).is_none());
    }

    #[test]
    fn flush_by_kind_and_all() {
        let mut cm = CacheManager::new();
        let now = SimTime::ZERO;
        cm.publish(group("g"), now, DEFAULT_LOCAL_LIFETIME);
        cm.publish(pipe("p"), now, DEFAULT_LOCAL_LIFETIME);
        cm.flush(Some(AdvKind::Group));
        assert_eq!(cm.len(AdvKind::Group, now), 0);
        assert_eq!(cm.len(AdvKind::Adv, now), 1);
        cm.flush(None);
        assert!(cm.is_empty(now));
    }

    #[test]
    fn pattern_matching_semantics() {
        assert!(match_pattern("*", "anything"));
        assert!(match_pattern("", "anything"));
        assert!(match_pattern("ps-*", "ps-SkiRental"));
        assert!(!match_pattern("ps-*", "other"));
        assert!(match_pattern("exact", "exact"));
        assert!(!match_pattern("exact", "exactly"));
    }

    #[test]
    fn filter_on_unknown_attribute_matches_nothing() {
        let filter = SearchFilter {
            attribute: Some("Colour".into()),
            value: "*".into(),
        };
        assert!(!filter.matches(&group("g")));
    }
}
