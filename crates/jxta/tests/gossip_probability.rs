//! Delivery-probability measurement for gossip in its *probabilistic*
//! regime (the ROADMAP open item).
//!
//! The exactly-once proptests run gossip with a fanout larger than the
//! neighbourhood, which degenerates to flooding. Here the fanout is small
//! relative to the 16-subscriber neighbourhood, so coverage is genuinely
//! probabilistic: each (fanout, TTL) point is run across several independent
//! seeds, the measured delivery ratio is printed as a table, and the test
//! asserts the ratio falls inside an expected band — monotonicity in fanout
//! and TTL included.
//!
//! The bands are deliberately wide (they describe a distribution, not a
//! point), but they pin the qualitative regime: starving configurations
//! (fanout 1) must lose a large fraction, generous configurations
//! (fanout 8 / TTL 8 over 17 peers) must deliver essentially everything.

mod common;

use common::build;
use jxta::DisseminationConfig;
use simnet::SimDuration;

const SUBSCRIBERS: usize = 16;
const EVENTS: usize = 4;
const SEEDS: [u64; 5] = [11, 222, 3333, 44_444, 555_555];

/// Measured delivery ratio (delivered / expected) for one gossip
/// configuration, pooled across [`SEEDS`].
fn delivery_ratio(fanout: usize, ttl: u8) -> f64 {
    let mut delivered = 0usize;
    for &seed in &SEEDS {
        let mut topology = build(DisseminationConfig::gossip(fanout, ttl), 1, 1, SUBSCRIBERS, seed);
        topology.warm_up();
        for event in 0..EVENTS {
            topology.publish_tag(0, &format!("event-{event}"));
            topology.net.run_for(SimDuration::from_secs(1));
        }
        topology.net.run_for(SimDuration::from_secs(10));
        for subscriber in 0..SUBSCRIBERS {
            delivered += topology
                .delivered_counts(subscriber)
                .values()
                .filter(|&&count| count == 1)
                .count();
        }
    }
    delivered as f64 / (SEEDS.len() * SUBSCRIBERS * EVENTS) as f64
}

#[test]
fn gossip_delivery_ratio_falls_in_the_expected_band_per_fanout_and_ttl() {
    // (fanout, ttl, expected band) — calibrated on the fixed seeds above;
    // the run is deterministic, so drift means behaviour changed, not luck.
    let grid: [(usize, u8, f64, f64); 6] = [
        (1, 2, 0.05, 0.60),
        (1, 4, 0.05, 0.75),
        (2, 2, 0.20, 0.80),
        (2, 4, 0.45, 0.95),
        (4, 4, 0.80, 1.00),
        (8, 8, 0.98, 1.00),
    ];
    println!(
        "\ngossip delivery probability ({SUBSCRIBERS} subscribers, {EVENTS} events x {} seeds)",
        SEEDS.len()
    );
    println!(
        "{:>7} {:>5} {:>10} {:>15}",
        "fanout", "ttl", "measured", "expected band"
    );
    let mut measured = Vec::new();
    for &(fanout, ttl, lo, hi) in &grid {
        let ratio = delivery_ratio(fanout, ttl);
        println!(
            "{fanout:>7} {ttl:>5} {ratio:>10.3} {:>15}",
            format!("[{lo:.2}, {hi:.2}]")
        );
        measured.push((fanout, ttl, ratio, lo, hi));
    }
    for &(fanout, ttl, ratio, lo, hi) in &measured {
        assert!(
            ratio >= lo && ratio <= hi,
            "gossip(fanout {fanout}, ttl {ttl}): measured delivery ratio {ratio:.3} \
             outside the expected band [{lo:.2}, {hi:.2}]"
        );
    }
    // The qualitative shape: more fanout (at equal TTL) and more TTL (at
    // equal fanout) must not lose delivery probability.
    let ratio_of = |f: usize, t: u8| {
        measured
            .iter()
            .find(|&&(mf, mt, ..)| mf == f && mt == t)
            .map(|&(_, _, r, ..)| r)
            .unwrap()
    };
    assert!(ratio_of(2, 2) >= ratio_of(1, 2), "fanout must help at TTL 2");
    assert!(ratio_of(2, 4) >= ratio_of(1, 4), "fanout must help at TTL 4");
    assert!(ratio_of(1, 4) >= ratio_of(1, 2), "TTL must help at fanout 1");
    assert!(ratio_of(2, 4) >= ratio_of(2, 2), "TTL must help at fanout 2");
    assert!(
        ratio_of(8, 8) >= 0.98,
        "a generous configuration must deliver essentially everything"
    );
}
