//! Rebalancing-controller tests: permanent shard death on the sharded
//! rendezvous mesh, driven by `simnet::ChurnDriver`.
//!
//! The churn suite (`churn.rs`) certifies the *revival* path: a killed
//! rendezvous comes back within the lease lifetime and delivery resumes.
//! These tests certify the path the ROADMAP left open — the shard stays dead
//! *past* the lease lifetime and recovery must come from the control plane
//! instead:
//!
//! * surviving rendezvous stop hearing the victim's load reports, declare
//!   the shard dead after `miss_threshold` report intervals and drop its
//!   mesh link (adopting its hash range per the deterministic ring rule);
//! * the victim's edge peers find their lease expired with every renewal
//!   unanswered and walk the same ring to the adopter, re-leasing there;
//! * delivery to every subscriber resumes with **no revival**, and the
//!   telemetry plane (load table, metrics registry, drop summary) shows
//!   exactly what happened.

mod common;

use common::{build, node_addr, DeliveryApp, Topology};
use jxta::{DisseminationConfig, MetricsRegistry};
use simnet::{ChurnDriver, DropReason, NodeId, SimDuration, SimTime};
use std::collections::HashMap;

const SHARDS: usize = 4;
const SUBSCRIBERS: usize = 8;
const SEED: u64 = 505;

/// Client leases run 120 virtual seconds; housekeeping every 30. Holding a
/// rendezvous down for 180 s guarantees every one of its leases expires and
/// at least one failover housekeeping tick runs afterwards.
const DEAD_WINDOW: SimDuration = SimDuration::from_secs(180);

fn rebalance_topology(seed: u64) -> (Topology, NodeId, HashMap<NodeId, Vec<usize>>) {
    let mut topology = build(
        DisseminationConfig::rendezvous_mesh(SHARDS),
        SHARDS,
        1,
        SUBSCRIBERS,
        seed,
    );
    topology.warm_up();
    let publisher_shard = topology
        .shard_of(topology.publishers[0])
        .expect("publisher holds a lease after warm-up");
    let mut by_shard: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for index in 0..SUBSCRIBERS {
        let shard = topology
            .shard_of(topology.subscribers[index])
            .expect("every subscriber holds a lease after warm-up");
        by_shard.entry(shard).or_default().push(index);
    }
    (topology, publisher_shard, by_shard)
}

/// A shard that is not the publisher's and has at least one subscriber.
fn victim_shard(publisher_shard: NodeId, by_shard: &HashMap<NodeId, Vec<usize>>) -> NodeId {
    let mut candidates: Vec<NodeId> = by_shard
        .keys()
        .copied()
        .filter(|&shard| shard != publisher_shard)
        .collect();
    candidates.sort();
    *candidates
        .first()
        .expect("the fixed names of this topology spread subscribers over several shards")
}

#[test]
fn permanent_shard_death_migrates_leases_and_delivery_resumes_without_revival() {
    let (mut topology, publisher_shard, by_shard) = rebalance_topology(SEED);
    let victim = victim_shard(publisher_shard, &by_shard);
    let victim_subscribers = by_shard[&victim].clone();
    assert!(!victim_subscribers.is_empty());
    // The ring index of the victim equals its node index: hosts are assigned
    // ascending in add order, and the ring sorts by address.
    let victim_index = topology
        .rendezvous
        .iter()
        .position(|&r| r == victim)
        .expect("victim is a rendezvous");
    let adopter_index = (victim_index + 1) % SHARDS;
    let adopter = topology.rendezvous[adopter_index];

    // Phase 1: healthy mesh.
    topology.publish_tag(0, "before");
    topology.net.run_for(SimDuration::from_secs(5));

    // Phase 2: the victim dies and STAYS dead, past the lease lifetime.
    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + DEAD_WINDOW);
    assert!(!topology.net.is_alive(victim), "no revival in this scenario");

    // Every one of the victim's former subscribers walked the failover ring
    // to the deterministic adopter (the next surviving shard in ring order).
    for &index in &victim_subscribers {
        assert_eq!(
            topology.shard_of(topology.subscribers[index]),
            Some(adopter),
            "subscriber {index} must re-lease with the ring adopter"
        );
    }

    // The survivors' controllers declared the shard dead and dropped the
    // mesh link; the adopter reports the victim's hash range as its own.
    {
        let adopter_peer = &topology.net.node_ref::<DeliveryApp>(adopter).unwrap().peer;
        assert_eq!(
            adopter_peer.adopted_shards(),
            vec![victim_index],
            "the adopter owns exactly the dead shard's ring range"
        );
        assert!(
            adopter_peer.owned_shards().contains(&adopter_index),
            "adoption must not displace the adopter's own range"
        );
        assert_eq!(adopter_peer.dead_shards().len(), 1);
    }
    for &rdv in &topology.rendezvous {
        if rdv == victim || rdv == adopter {
            continue;
        }
        let peer = &topology.net.node_ref::<DeliveryApp>(rdv).unwrap().peer;
        assert!(
            peer.adopted_shards().is_empty(),
            "non-adjacent survivors adopt nothing"
        );
        assert_eq!(
            peer.dead_shards().len(),
            1,
            "every survivor's controller agrees on the dead set"
        );
    }

    // Phase 3: delivery has resumed for EVERY subscriber — no revival.
    topology.publish_tag(0, "late");
    topology.net.run_for(SimDuration::from_secs(10));
    for index in 0..SUBSCRIBERS {
        let counts = topology.delivered_counts(index);
        assert_eq!(
            counts.get("before").copied().unwrap_or(0),
            1,
            "subscriber {index}: pre-death event delivered exactly once"
        );
        assert_eq!(
            counts.get("late").copied().unwrap_or(0),
            1,
            "subscriber {index}: the controller must restore delivery without revival"
        );
    }

    // The telemetry plane exposes the migration: per-shard relay counts in a
    // registry snapshot, and the kernel's drop summary names the causes.
    let mut registry = MetricsRegistry::new();
    topology.net.export_metrics(&mut registry);
    let adopter_peer = &topology.net.node_ref::<DeliveryApp>(adopter).unwrap().peer;
    adopter_peer.export_metrics(&mut registry, "rdv.adopter");
    let snapshot = registry.snapshot();
    assert!(
        snapshot.counter("rdv.adopter.wire.forwarded") > 0,
        "the adopter relayed traffic"
    );
    assert!(
        snapshot.counter(&format!("rdv.adopter.shard{adopter_index}.relayed")) > 0,
        "the adopter's own shard row shows relayed events"
    );
    assert_eq!(
        snapshot.gauge(&format!("rdv.adopter.shard{victim_index}.dead")),
        Some(1),
        "the victim's load-table row is flagged dead"
    );
    let drops = topology.net.drop_summary();
    assert!(
        drops.of(DropReason::NodeDown) > 0,
        "traffic addressed to the dead rendezvous is accounted as node_down"
    );
    assert_eq!(
        drops.of(DropReason::FaultInjected),
        0,
        "no pair was cut in this scenario"
    );
}

#[test]
fn tracing_explains_every_copy_across_a_permanent_shard_death() {
    // The full rebalance arc under the tracing plane: a healthy publish, a
    // publish while the victim shard is dark, and a publish after the
    // controller migrated its leases — every copy of all three events must
    // end in a named outcome (acceptance: zero unknown outcomes).
    let (mut topology, publisher_shard, by_shard) = rebalance_topology(SEED);
    topology.enable_tracing(1 << 17);
    let victim = victim_shard(publisher_shard, &by_shard);
    let victim_subscribers = by_shard[&victim].clone();

    topology.publish_tag(0, "before");
    topology.net.run_for(SimDuration::from_secs(5));

    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "dark");
    churn.run_until(&mut topology.net, kill_at + DEAD_WINDOW);

    topology.publish_tag(0, "migrated");
    topology.net.run_for(SimDuration::from_secs(10));

    let ids = topology.traced_ids();
    assert_eq!(ids.len(), 3, "three publishes, three traced events");
    let (delivered, undelivered) = topology.assert_every_copy_explained();
    assert_eq!(
        delivered,
        3 * SUBSCRIBERS - victim_subscribers.len(),
        "only the dark-window copies of the victim's subscribers are lost"
    );
    assert_eq!(undelivered, victim_subscribers.len());

    // The dark-window losses are wire losses at the relaying rendezvous,
    // corroborated by the kernel as node_down (never fault injection).
    let dark = ids[1];
    for &index in &victim_subscribers {
        let verdict = topology.why_missing(index, dark);
        let jxta::telemetry::trace::DeliveryVerdict::LostOnWire { last_send } = verdict else {
            panic!("subscriber {index}: expected a wire loss, got: {verdict}");
        };
        assert_eq!(Some(last_send.node), topology.trace_handle_of(publisher_shard));
        assert_eq!(
            topology.kernel_drop_reason(&verdict),
            Some(DropReason::NodeDown),
            "subscriber {index}: the kernel join must name node_down"
        );
    }
}

#[test]
fn late_subscriber_joins_after_permanent_shard_death() {
    // A subscriber whose input pipe opens only AFTER its shard died
    // permanently: the lease migration happens underneath (connect runs at
    // boot), and the late subscription must still hear subsequent events.
    let (mut topology, publisher_shard, by_shard) = rebalance_topology(SEED);
    let victim = victim_shard(publisher_shard, &by_shard);
    let late_index = by_shard[&victim][0];

    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + DEAD_WINDOW);
    assert!(!topology.net.is_alive(victim));

    // The late peer re-subscribes (fresh input pipe) on the migrated lease.
    let pipe = topology.pipe.clone();
    let late_node = topology.subscribers[late_index];
    topology.net.invoke::<DeliveryApp, _>(late_node, |app, ctx| {
        app.peer.close_wire_input_pipe(pipe.pipe_id);
        app.delivered.clear();
        app.peer.create_wire_input_pipe(ctx, &pipe);
    });
    topology.net.run_for(SimDuration::from_secs(2));

    topology.publish_tag(0, "after-resub");
    topology.net.run_for(SimDuration::from_secs(10));
    assert_eq!(
        topology
            .delivered_counts(late_index)
            .get("after-resub")
            .copied()
            .unwrap_or(0),
        1,
        "a subscription created after the permanent death must deliver"
    );
}

#[test]
fn disabling_the_controller_keeps_the_dead_shard_dark() {
    // The ablation baseline: same scenario, controller off — the victim's
    // subscribers stay stranded (the pre-controller behaviour).
    let mut topology = build(
        DisseminationConfig::rendezvous_mesh(SHARDS).with_rebalance(dissem::RebalanceConfig::disabled()),
        SHARDS,
        1,
        SUBSCRIBERS,
        SEED,
    );
    topology.warm_up();
    let publisher_shard = topology.shard_of(topology.publishers[0]).unwrap();
    let mut by_shard: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for index in 0..SUBSCRIBERS {
        let shard = topology.shard_of(topology.subscribers[index]).unwrap();
        by_shard.entry(shard).or_default().push(index);
    }
    let victim = victim_shard(publisher_shard, &by_shard);
    let victim_subscribers = by_shard[&victim].clone();

    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + DEAD_WINDOW);

    topology.publish_tag(0, "stranded");
    topology.net.run_for(SimDuration::from_secs(10));
    for &index in &victim_subscribers {
        assert_eq!(
            topology
                .delivered_counts(index)
                .get("stranded")
                .copied()
                .unwrap_or(0),
            0,
            "subscriber {index}: without the controller the dead shard stays dark"
        );
        assert_eq!(
            topology.shard_of(topology.subscribers[index]),
            Some(victim),
            "subscriber {index}: the stale lease record still points at the dead home"
        );
    }
}

#[test]
fn established_mesh_links_stop_hello_chatter() {
    // The steady-state throttle: once every mesh link is established, the
    // housekeeping tick re-announces nothing; a dead link resumes probing.
    let mut topology = build(DisseminationConfig::rendezvous_mesh(3), 3, 1, 3, SEED);
    topology.warm_up();
    let hellos = |topology: &Topology, rdv: NodeId| {
        topology
            .net
            .node_ref::<DeliveryApp>(rdv)
            .unwrap()
            .peer
            .rendezvous()
            .mesh_hellos_sent()
    };
    let after_warmup: Vec<u64> = topology
        .rendezvous
        .iter()
        .map(|&r| hellos(&topology, r))
        .collect();
    topology.net.run_for(SimDuration::from_secs(150)); // five housekeeping ticks
    let after_idle: Vec<u64> = topology
        .rendezvous
        .iter()
        .map(|&r| hellos(&topology, r))
        .collect();
    assert_eq!(
        after_warmup, after_idle,
        "an established mesh must not re-announce every tick"
    );

    // Kill one rendezvous past the dead horizon: the survivors drop the
    // link and resume hello probes toward the missing seed.
    let victim = topology.rendezvous[2];
    let mut churn = ChurnDriver::new();
    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + SimDuration::from_secs(150));
    let survivor = topology.rendezvous[0];
    assert!(
        hellos(&topology, survivor) > after_idle[0],
        "a dropped link resumes hello probing so revival can heal it"
    );
    assert!(
        !topology
            .net
            .node_ref::<DeliveryApp>(survivor)
            .unwrap()
            .peer
            .rendezvous()
            .has_mesh_link_at(node_addr(2)),
        "the dead peer's link is gone from the survivor's table"
    );
}

#[test]
fn rebalance_scenarios_are_deterministic() {
    let run = |seed: u64| -> Vec<Vec<(String, usize)>> {
        let (mut topology, publisher_shard, by_shard) = rebalance_topology(seed);
        let victim = victim_shard(publisher_shard, &by_shard);
        let mut churn = ChurnDriver::new();
        let kill_at = topology.net.now() + SimDuration::from_secs(1);
        churn.kill_at(kill_at, victim);
        churn.run_until(&mut topology.net, kill_at + DEAD_WINDOW);
        topology.publish_tag(0, "late");
        topology.net.run_for(SimDuration::from_secs(10));
        (0..SUBSCRIBERS)
            .map(|i| {
                let mut rows: Vec<(String, usize)> = topology.delivered_counts(i).into_iter().collect();
                rows.sort();
                rows
            })
            .collect()
    };
    assert_eq!(
        run(SEED),
        run(SEED),
        "identical seeds + identical kill scripts must migrate identically"
    );
}

#[test]
fn shard_ring_is_shared_by_every_rendezvous() {
    let (topology, _, _) = rebalance_topology(SEED);
    let rings: Vec<Vec<simnet::SimAddress>> = topology
        .rendezvous
        .iter()
        .map(|&r| topology.net.node_ref::<DeliveryApp>(r).unwrap().peer.shard_ring())
        .collect();
    assert!(rings.iter().all(|ring| ring == &rings[0]), "one ring, every peer");
    assert_eq!(rings[0].len(), SHARDS);
    assert_eq!(rings[0][0], node_addr(0), "ring order is ascending address order");
    let _ = SimTime::ZERO; // keep the import used if assertions above change
}
