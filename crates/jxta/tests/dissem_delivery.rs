//! Exactly-once delivery under every dissemination strategy.
//!
//! Property: on a randomized topology (a configurable number of rendezvous
//! peers, a random number of publishers and subscribers) every subscriber
//! receives every published wire message **exactly once** — no loss, and no
//! duplicate surviving the seen-window dedup — whichever of the four
//! strategies the peers run. A second property checks the sharded rendezvous
//! mesh against the paper baseline: across shard counts, `RendezvousMesh`
//! delivers exactly the same set of events as `DirectFanout` on the same
//! topology.
//!
//! The gossip configuration uses a fanout larger than any generated
//! neighbourhood, which degenerates to flooding-with-dedup and therefore
//! guarantees coverage on these connected topologies (the probabilistic
//! regime is measured by `tests/gossip_probability.rs` and the
//! `ablation_dissem` bench instead).

mod common;

use common::build;
use jxta::{DisseminationConfig, StrategyKind};
use proptest::prelude::*;
use simnet::SimDuration;
use std::collections::{BTreeMap, HashMap};

/// Runs the workload and returns, per subscriber, the delivery count per tag.
fn run(
    strategy: DisseminationConfig,
    rendezvous: usize,
    publishers: usize,
    subscribers: usize,
    events: usize,
    seed: u64,
) -> Vec<HashMap<String, usize>> {
    let mut topology = build(strategy, rendezvous, publishers, subscribers, seed);
    topology.warm_up();
    for p in 0..publishers {
        for e in 0..events {
            topology.publish_tag(p, &format!("pub{p}-event{e}"));
            topology.net.run_for(SimDuration::from_millis(250));
        }
    }
    topology.net.run_for(SimDuration::from_secs(10));
    (0..subscribers).map(|i| topology.delivered_counts(i)).collect()
}

/// The per-subscriber delivered tag sets (order-insensitive), for comparing
/// two strategies on the same topology.
fn delivered_sets(per_subscriber: &[HashMap<String, usize>]) -> Vec<BTreeMap<String, usize>> {
    per_subscriber
        .iter()
        .map(|counts| counts.iter().map(|(k, v)| (k.clone(), *v)).collect())
        .collect()
}

fn strategy_of(index: usize, shards: usize) -> DisseminationConfig {
    match StrategyKind::ALL[index % StrategyKind::ALL.len()] {
        StrategyKind::DirectFanout => DisseminationConfig::direct_fanout(),
        StrategyKind::RendezvousTree => DisseminationConfig::rendezvous_tree(),
        StrategyKind::RendezvousMesh => DisseminationConfig::rendezvous_mesh(shards),
        // Fanout 64 >= any generated neighbourhood: flooding-with-dedup.
        StrategyKind::Gossip => DisseminationConfig::gossip(64, 4),
    }
}

proptest! {
    /// Every subscriber receives each published event exactly once, under
    /// each strategy, on randomized topologies (including multi-rendezvous
    /// deployments).
    #[test]
    fn every_subscriber_receives_each_event_exactly_once(
        strategy_index in 0usize..4,
        shards in 1usize..4,
        publishers in 1usize..3,
        subscribers in 1usize..6,
        events in 1usize..4,
        seed in 1u64..5_000,
    ) {
        let strategy = strategy_of(strategy_index, shards);
        let per_subscriber = run(strategy.clone(), shards, publishers, subscribers, events, seed);
        for (index, counts) in per_subscriber.iter().enumerate() {
            for p in 0..publishers {
                for e in 0..events {
                    let tag = format!("pub{p}-event{e}");
                    let count = counts.get(&tag).copied().unwrap_or(0);
                    prop_assert_eq!(
                        count, 1,
                        "strategy {} shards {} subscriber {} tag {}: delivered {} times (want exactly 1)",
                        strategy.kind, shards, index, tag, count
                    );
                }
            }
            prop_assert_eq!(
                counts.values().sum::<usize>(), publishers * events,
                "strategy {} shards {} subscriber {}: spurious deliveries {:?}",
                strategy.kind, shards, index, counts
            );
        }
    }

    /// The sharded rendezvous mesh delivers exactly the set of events the
    /// paper-baseline direct fan-out delivers, on the same randomized
    /// topology and shard count — and both are exactly-once.
    #[test]
    fn rendezvous_mesh_matches_direct_fanout_delivery(
        shards in 1usize..5,
        publishers in 1usize..3,
        subscribers in 1usize..6,
        events in 1usize..3,
        seed in 1u64..5_000,
    ) {
        let mesh = run(
            DisseminationConfig::rendezvous_mesh(shards),
            shards, publishers, subscribers, events, seed,
        );
        let direct = run(
            DisseminationConfig::direct_fanout(),
            shards, publishers, subscribers, events, seed,
        );
        let mesh_sets = delivered_sets(&mesh);
        let direct_sets = delivered_sets(&direct);
        prop_assert_eq!(
            &mesh_sets, &direct_sets,
            "shards {}: mesh delivered sets must match direct fan-out", shards
        );
        for (index, counts) in mesh_sets.iter().enumerate() {
            prop_assert_eq!(
                counts.len(), publishers * events,
                "shards {} subscriber {}: mesh must cover every event", shards, index
            );
            prop_assert!(
                counts.values().all(|&c| c == 1),
                "shards {} subscriber {}: every delivery exactly once, got {:?}",
                shards, index, counts
            );
        }
    }
}
