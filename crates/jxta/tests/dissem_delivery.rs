//! Exactly-once delivery under every dissemination strategy.
//!
//! Property: on a randomized topology (one rendezvous, a random number of
//! publishers and subscribers) every subscriber receives every published wire
//! message **exactly once** — no loss, and no duplicate surviving the
//! seen-window dedup — whichever of the three strategies the peers run.
//!
//! The gossip configuration uses a fanout larger than any generated
//! neighbourhood, which degenerates to flooding-with-dedup and therefore
//! guarantees coverage on these connected topologies (the probabilistic
//! regime is exercised by the `ablation_dissem` bench instead).

use jxta::peer::{CostModel, JxtaPeer, PeerConfig};
use jxta::{is_jxta_timer, DisseminationConfig, JxtaEvent, Message, MessageElement, PeerId, StrategyKind};
use proptest::prelude::*;
use simnet::{
    Datagram, Network, NetworkBuilder, NodeConfig, NodeContext, NodeId, SimAddress, SimDuration, SimNode,
    SubnetId, TimerToken, TransportKind,
};
use std::collections::HashMap;

/// A bare application node recording every wire message delivered to it.
struct DeliveryApp {
    peer: JxtaPeer,
    delivered: Vec<String>,
}

impl DeliveryApp {
    fn boxed(config: PeerConfig) -> Box<Self> {
        Box::new(DeliveryApp {
            peer: JxtaPeer::new(config.with_costs(CostModel::free())),
            delivered: Vec::new(),
        })
    }

    fn drain(&mut self) {
        for event in self.peer.take_events() {
            if let JxtaEvent::WireMessageReceived { message, .. } = event {
                if let Some(tag) = message.element_text("app", "tag") {
                    self.delivered.push(tag);
                }
            }
        }
    }
}

impl SimNode for DeliveryApp {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.peer.on_start(ctx);
        self.drain();
    }
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
        self.peer.on_datagram(ctx, &dg);
        self.drain();
    }
    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
        if is_jxta_timer(tag) {
            self.peer.on_timer(ctx, tag);
        }
        self.drain();
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Topology {
    net: Network,
    publishers: Vec<NodeId>,
    subscribers: Vec<NodeId>,
    pipe: jxta::PipeAdvertisement,
}

fn build(strategy: DisseminationConfig, publishers: usize, subscribers: usize, seed: u64) -> Topology {
    let mut builder = NetworkBuilder::new(seed);
    let rdv_config = PeerConfig::rendezvous("rdv").with_dissemination(strategy.clone());
    builder.add_node(DeliveryApp::boxed(rdv_config), NodeConfig::lan_peer(SubnetId(0)));
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let edge = |name: String| {
        DeliveryApp::boxed(
            PeerConfig::edge(name)
                .with_seeds(vec![rdv_addr])
                .with_dissemination(strategy.clone()),
        )
    };
    let publishers = (0..publishers)
        .map(|i| builder.add_node(edge(format!("shop-{i}")), NodeConfig::lan_peer(SubnetId(0))))
        .collect();
    let subscribers = (0..subscribers)
        .map(|i| builder.add_node(edge(format!("skier-{i}")), NodeConfig::lan_peer(SubnetId(0))))
        .collect();
    let group = jxta::PeerGroup::for_event_type("Delivery", PeerId::derive("shop-0"));
    let pipe = group
        .wire_pipe()
        .expect("event-type groups embed a wire pipe")
        .clone();
    Topology {
        net: builder.build(),
        publishers,
        subscribers,
        pipe,
    }
}

/// Runs the workload and returns, per subscriber, the delivery count per tag.
fn run(
    strategy: DisseminationConfig,
    publishers: usize,
    subscribers: usize,
    events: usize,
    seed: u64,
) -> Vec<HashMap<String, usize>> {
    let mut topology = build(strategy, publishers, subscribers, seed);
    topology.net.run_for(SimDuration::from_secs(2));
    let pipe = topology.pipe.clone();
    for &subscriber in &topology.subscribers {
        topology.net.invoke::<DeliveryApp, _>(subscriber, |app, ctx| {
            app.peer.create_wire_input_pipe(ctx, &pipe);
        });
    }
    for &publisher in &topology.publishers {
        topology.net.invoke::<DeliveryApp, _>(publisher, |app, ctx| {
            app.peer.resolve_wire_output_pipe(ctx, &pipe);
        });
    }
    topology.net.run_for(SimDuration::from_secs(5));
    for (p, &publisher) in topology.publishers.iter().enumerate() {
        for e in 0..events {
            let tag = format!("pub{p}-event{e}");
            topology.net.invoke::<DeliveryApp, _>(publisher, |app, ctx| {
                let mut message = Message::new();
                message.add(MessageElement::text("app", "tag", tag.clone()));
                app.peer
                    .wire_send(ctx, pipe.pipe_id, &message)
                    .expect("publish failed");
            });
            topology.net.run_for(SimDuration::from_millis(250));
        }
    }
    topology.net.run_for(SimDuration::from_secs(10));
    topology
        .subscribers
        .iter()
        .map(|&subscriber| {
            let app = topology
                .net
                .node_ref::<DeliveryApp>(subscriber)
                .expect("subscriber exists");
            let mut counts = HashMap::new();
            for tag in &app.delivered {
                *counts.entry(tag.clone()).or_insert(0usize) += 1;
            }
            counts
        })
        .collect()
}

fn strategy_of(index: usize) -> DisseminationConfig {
    match StrategyKind::ALL[index % 3] {
        StrategyKind::DirectFanout => DisseminationConfig::direct_fanout(),
        StrategyKind::RendezvousTree => DisseminationConfig::rendezvous_tree(),
        // Fanout 64 >= any generated neighbourhood: flooding-with-dedup.
        StrategyKind::Gossip => DisseminationConfig::gossip(64, 4),
    }
}

proptest! {
    /// Every subscriber receives each published event exactly once, under
    /// each strategy, on randomized topologies.
    #[test]
    fn every_subscriber_receives_each_event_exactly_once(
        strategy_index in 0usize..3,
        publishers in 1usize..3,
        subscribers in 1usize..6,
        events in 1usize..4,
        seed in 1u64..5_000,
    ) {
        let strategy = strategy_of(strategy_index);
        let per_subscriber = run(strategy.clone(), publishers, subscribers, events, seed);
        for (index, counts) in per_subscriber.iter().enumerate() {
            for p in 0..publishers {
                for e in 0..events {
                    let tag = format!("pub{p}-event{e}");
                    let count = counts.get(&tag).copied().unwrap_or(0);
                    prop_assert_eq!(
                        count, 1,
                        "strategy {} subscriber {} tag {}: delivered {} times (want exactly 1)",
                        strategy.kind, index, tag, count
                    );
                }
            }
            prop_assert_eq!(
                counts.values().sum::<usize>(), publishers * events,
                "strategy {} subscriber {}: spurious deliveries {:?}",
                strategy.kind, index, counts
            );
        }
    }
}
