//! Churn and fault-injection tests for the sharded rendezvous mesh, driven
//! by the deterministic `simnet::ChurnDriver`.
//!
//! The paper's single-rendezvous topology dies with its rendezvous; the
//! sharded mesh is supposed to confine a rendezvous failure to its own
//! shard. These tests certify exactly that:
//!
//! * killing one of N rendezvous peers mid-run loses only the in-flight
//!   events of that shard's subscribers, and reviving it restores delivery;
//! * cutting the rendezvous-to-rendezvous mesh links partitions delivery at
//!   shard boundaries, and restoring the links heals it;
//! * the whole scenario — kills, revivals and all — is bit-for-bit
//!   reproducible for a given seed.
//!
//! Timing note: the scripts below keep every dead window well under the
//! 120 s client-lease lifetime, so shard membership survives the outage and
//! revival alone restores delivery (no re-shard needed).

mod common;

use common::{build, Topology};
use jxta::telemetry::trace::DeliveryVerdict;
use jxta::DisseminationConfig;
use simnet::{ChurnDriver, DropReason, NodeId, SimDuration};
use std::collections::HashMap;

const SHARDS: usize = 3;
const SUBSCRIBERS: usize = 6;
const SEED: u64 = 2002;

/// Builds the standard churn topology (3 mesh shards, 1 publisher,
/// 6 subscribers), warms it up and returns it together with the shard map:
/// `(topology, publisher_shard, subscribers_by_shard)`.
fn churn_topology(seed: u64) -> (Topology, NodeId, HashMap<NodeId, Vec<usize>>) {
    let mut topology = build(
        DisseminationConfig::rendezvous_mesh(SHARDS),
        SHARDS,
        1,
        SUBSCRIBERS,
        seed,
    );
    topology.warm_up();
    let publisher_shard = topology
        .shard_of(topology.publishers[0])
        .expect("publisher holds a lease after warm-up");
    let mut by_shard: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for index in 0..SUBSCRIBERS {
        let shard = topology
            .shard_of(topology.subscribers[index])
            .expect("every subscriber holds a lease after warm-up");
        by_shard.entry(shard).or_default().push(index);
    }
    (topology, publisher_shard, by_shard)
}

/// A shard that is not the publisher's and has at least one subscriber — the
/// victim whose failure must stay confined.
fn victim_shard(publisher_shard: NodeId, by_shard: &HashMap<NodeId, Vec<usize>>) -> NodeId {
    let mut candidates: Vec<NodeId> = by_shard
        .keys()
        .copied()
        .filter(|&shard| shard != publisher_shard)
        .collect();
    candidates.sort();
    *candidates
        .first()
        .expect("the fixed names of this topology spread subscribers over several shards")
}

#[test]
fn killing_one_shard_rendezvous_loses_only_that_shards_inflight_events() {
    let (mut topology, publisher_shard, by_shard) = churn_topology(SEED);
    let victim = victim_shard(publisher_shard, &by_shard);
    let victim_subscribers = by_shard[&victim].clone();
    assert!(!victim_subscribers.is_empty());

    // Phase 1: healthy mesh — everyone hears "before".
    topology.publish_tag(0, "before");
    topology.net.run_for(SimDuration::from_secs(5));

    // Phase 2: the victim rendezvous dies; events published during the
    // outage are in-flight casualties for its shard only.
    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    let revive_at = kill_at + SimDuration::from_secs(20);
    let mut churn = ChurnDriver::new();
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + SimDuration::from_secs(1));
    assert!(!topology.net.is_alive(victim));
    topology.publish_tag(0, "during");
    churn.run_until(&mut topology.net, kill_at + SimDuration::from_secs(19));

    // Phase 3: revival (the revived rendezvous re-announces its mesh links
    // from on_start); delivery to the shard resumes.
    churn.revive_at(revive_at, victim);
    churn.run_until(&mut topology.net, revive_at + SimDuration::from_secs(5));
    assert!(topology.net.is_alive(victim));
    topology.publish_tag(0, "after");
    topology.net.run_for(SimDuration::from_secs(10));

    for index in 0..SUBSCRIBERS {
        let counts = topology.delivered_counts(index);
        let on_victim_shard = victim_subscribers.contains(&index);
        assert_eq!(
            counts.get("before").copied().unwrap_or(0),
            1,
            "subscriber {index}: pre-churn event delivered exactly once"
        );
        assert_eq!(
            counts.get("during").copied().unwrap_or(0),
            usize::from(!on_victim_shard),
            "subscriber {index} (victim shard: {on_victim_shard}): only the dead \
             shard loses the in-flight event"
        );
        assert_eq!(
            counts.get("after").copied().unwrap_or(0),
            1,
            "subscriber {index}: revival restores delivery"
        );
    }
}

#[test]
fn cutting_mesh_links_partitions_at_shard_boundaries_and_healing_restores() {
    let (mut topology, publisher_shard, by_shard) = churn_topology(SEED);
    let other_shards: Vec<NodeId> = topology
        .rendezvous
        .iter()
        .copied()
        .filter(|&r| r != publisher_shard)
        .collect();

    // Cut every mesh link out of the publisher's shard, then publish.
    let cut_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    for &other in &other_shards {
        churn.cut_link_at(cut_at, publisher_shard, other);
    }
    churn.run_until(&mut topology.net, cut_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "partitioned");
    topology.net.run_for(SimDuration::from_secs(5));

    // Heal the links and publish again.
    let heal_at = topology.net.now() + SimDuration::from_secs(1);
    for &other in &other_shards {
        churn.restore_link_at(heal_at, publisher_shard, other);
    }
    churn.run_until(&mut topology.net, heal_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "healed");
    topology.net.run_for(SimDuration::from_secs(10));

    for index in 0..SUBSCRIBERS {
        let counts = topology.delivered_counts(index);
        let local = by_shard
            .get(&publisher_shard)
            .is_some_and(|subs| subs.contains(&index));
        assert_eq!(
            counts.get("partitioned").copied().unwrap_or(0),
            usize::from(local),
            "subscriber {index}: with the mesh cut, only the publisher's own \
             shard ({local}) hears the event"
        );
        assert_eq!(
            counts.get("healed").copied().unwrap_or(0),
            1,
            "subscriber {index}: restored mesh links resume full delivery"
        );
    }
}

#[test]
fn churn_scenarios_are_deterministic_under_the_discrete_event_clock() {
    let run = |seed: u64| -> Vec<Vec<String>> {
        let (mut topology, publisher_shard, by_shard) = churn_topology(seed);
        let victim = victim_shard(publisher_shard, &by_shard);
        let mut churn = ChurnDriver::new();
        let base = topology.net.now();
        churn
            .kill_at(base + SimDuration::from_secs(2), victim)
            .revive_at(base + SimDuration::from_secs(12), victim);
        churn.run_until(&mut topology.net, base + SimDuration::from_secs(4));
        topology.publish_tag(0, "mid-outage");
        churn.run_until(&mut topology.net, base + SimDuration::from_secs(20));
        topology.publish_tag(0, "post-revival");
        topology.net.run_for(SimDuration::from_secs(10));
        (0..SUBSCRIBERS)
            .map(|i| {
                let mut tags: Vec<String> = topology.delivered_counts(i).into_keys().collect();
                tags.sort();
                tags
            })
            .collect()
    };
    assert_eq!(
        run(SEED),
        run(SEED),
        "identical seeds + identical churn scripts must reproduce identical deliveries"
    );
}

#[test]
fn killed_rendezvous_drops_are_accounted_as_node_down() {
    let (mut topology, publisher_shard, by_shard) = churn_topology(SEED);
    let victim = victim_shard(publisher_shard, &by_shard);
    let before = topology.net.drop_summary();
    let mut churn = ChurnDriver::new();
    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "lost");
    topology.net.run_for(SimDuration::from_secs(5));
    // The per-reason drop summary names the exact cause: the mesh copy sent
    // to the dead rendezvous is node_down, and *only* node_down — a kill
    // (unlike a link cut) must never surface as fault injection, random
    // loss or a firewall.
    let after = topology.net.drop_summary();
    assert!(
        after.of(simnet::DropReason::NodeDown) > before.of(simnet::DropReason::NodeDown),
        "the mesh copy addressed to the dead rendezvous must be counted"
    );
    for reason in [
        simnet::DropReason::FaultInjected,
        simnet::DropReason::RandomLoss,
        simnet::DropReason::Firewall,
    ] {
        assert_eq!(
            after.of(reason),
            before.of(reason),
            "a kill must not be misattributed to {reason}"
        );
    }
}

#[test]
fn tracing_explains_every_undelivered_copy_when_a_rendezvous_dies() {
    let (mut topology, publisher_shard, by_shard) = churn_topology(SEED);
    topology.enable_tracing(1 << 16);
    let victim = victim_shard(publisher_shard, &by_shard);
    let victim_subscribers = by_shard[&victim].clone();

    // One healthy publish, then one mid-outage publish.
    topology.publish_tag(0, "before");
    topology.net.run_for(SimDuration::from_secs(5));
    let kill_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    churn.kill_at(kill_at, victim);
    churn.run_until(&mut topology.net, kill_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "during");
    topology.net.run_for(SimDuration::from_secs(5));

    // The sweep itself is the acceptance criterion: zero unknown outcomes.
    let ids = topology.traced_ids();
    assert_eq!(ids.len(), 2, "two publishes, two traced events");
    let (delivered, undelivered) = topology.assert_every_copy_explained();
    assert_eq!(
        delivered,
        2 * SUBSCRIBERS - victim_subscribers.len(),
        "everyone hears the healthy event; only the dead shard misses the second"
    );
    assert_eq!(undelivered, victim_subscribers.len());

    // And the forensics name the exact hop and transport cause: the copy
    // left the publisher's home rendezvous toward the dead one, where the
    // kernel swallowed it as node_down.
    let during = ids[1];
    for &index in &victim_subscribers {
        let verdict = topology.why_missing(index, during);
        let DeliveryVerdict::LostOnWire { last_send } = verdict else {
            panic!("subscriber {index}: expected a wire loss, got: {verdict}");
        };
        assert_eq!(
            Some(last_send.node),
            topology.trace_handle_of(publisher_shard),
            "the blamed hop is the relaying rendezvous"
        );
        assert_eq!(
            topology.kernel_drop_reason(&verdict),
            Some(DropReason::NodeDown),
            "subscriber {index}: the kernel join must name node_down"
        );
    }
}

#[test]
fn tracing_explains_partitioned_copies_as_fault_injected() {
    let (mut topology, publisher_shard, by_shard) = churn_topology(SEED);
    topology.enable_tracing(1 << 16);
    let local_subscribers = by_shard.get(&publisher_shard).cloned().unwrap_or_default();

    // Cut every mesh link out of the publisher's shard, then publish once.
    let cut_at = topology.net.now() + SimDuration::from_secs(1);
    let other_shards: Vec<NodeId> = topology
        .rendezvous
        .iter()
        .copied()
        .filter(|&r| r != publisher_shard)
        .collect();
    let mut churn = ChurnDriver::new();
    for &other in &other_shards {
        churn.cut_link_at(cut_at, publisher_shard, other);
    }
    churn.run_until(&mut topology.net, cut_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "partitioned");
    topology.net.run_for(SimDuration::from_secs(5));

    let ids = topology.traced_ids();
    assert_eq!(ids.len(), 1);
    let (delivered, undelivered) = topology.assert_every_copy_explained();
    assert_eq!(delivered, local_subscribers.len());
    assert_eq!(undelivered, SUBSCRIBERS - local_subscribers.len());
    for index in 0..SUBSCRIBERS {
        let verdict = topology.why_missing(index, ids[0]);
        if local_subscribers.contains(&index) {
            assert!(verdict.is_delivered(), "subscriber {index} shares the shard");
            continue;
        }
        let DeliveryVerdict::LostOnWire { last_send } = verdict else {
            panic!("subscriber {index}: expected a wire loss, got: {verdict}");
        };
        assert_eq!(Some(last_send.node), topology.trace_handle_of(publisher_shard));
        assert_eq!(
            topology.kernel_drop_reason(&verdict),
            Some(DropReason::FaultInjected),
            "subscriber {index}: a link cut must surface as fault_injected, not node_down"
        );
    }
}

#[test]
fn cut_mesh_links_drops_are_accounted_as_fault_injected() {
    let (mut topology, publisher_shard, _) = churn_topology(SEED);
    let other_shards: Vec<NodeId> = topology
        .rendezvous
        .iter()
        .copied()
        .filter(|&r| r != publisher_shard)
        .collect();
    let before = topology.net.drop_summary();
    let cut_at = topology.net.now() + SimDuration::from_secs(1);
    let mut churn = ChurnDriver::new();
    for &other in &other_shards {
        churn.cut_link_at(cut_at, publisher_shard, other);
    }
    churn.run_until(&mut topology.net, cut_at + SimDuration::from_secs(1));
    topology.publish_tag(0, "partitioned");
    topology.net.run_for(SimDuration::from_secs(5));
    let after = topology.net.drop_summary();
    assert!(
        after.of(simnet::DropReason::FaultInjected) > before.of(simnet::DropReason::FaultInjected),
        "copies swallowed by the cut must be fault_injected"
    );
    assert_eq!(
        after.of(simnet::DropReason::NodeDown),
        before.of(simnet::DropReason::NodeDown),
        "nobody died in this scenario — the cause must be the cut, not node_down"
    );
}
