//! Shared topology scaffolding for the dissemination integration tests:
//! a bare application node that records delivered wire messages, and a
//! builder for LAN topologies with any number of mesh-linked rendezvous
//! peers, publishers and subscribers.

// Each integration-test crate compiles its own copy of this module and uses
// a different subset of it.
#![allow(dead_code)]

use jxta::peer::{CostModel, JxtaPeer, PeerConfig};
use jxta::telemetry::trace::{DeliveryVerdict, TraceCollector, TraceId};
use jxta::{
    is_jxta_timer, DisseminationConfig, JxtaEvent, Message, MessageElement, PeerId, SharedTraceCollector,
};
use simnet::{
    Datagram, DropReason, Network, NetworkBuilder, NodeConfig, NodeContext, NodeId, SimAddress, SimDuration,
    SimNode, SubnetId, TimerToken, TraceEvent, TransportKind,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A bare application node recording every wire message delivered to it.
pub struct DeliveryApp {
    pub peer: JxtaPeer,
    pub delivered: Vec<String>,
}

impl DeliveryApp {
    pub fn boxed(config: PeerConfig) -> Box<Self> {
        Box::new(DeliveryApp {
            peer: JxtaPeer::new(config.with_costs(CostModel::free())),
            delivered: Vec::new(),
        })
    }

    fn drain(&mut self) {
        for event in self.peer.take_events() {
            if let JxtaEvent::WireMessageReceived { message, .. } = event {
                if let Some(tag) = message.element_text("app", "tag") {
                    self.delivered.push(tag);
                }
            }
        }
    }
}

impl SimNode for DeliveryApp {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.peer.on_start(ctx);
        self.drain();
    }
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
        self.peer.on_datagram(ctx, &dg);
        self.drain();
    }
    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
        if is_jxta_timer(tag) {
            self.peer.on_timer(ctx, tag);
        }
        self.drain();
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A built test topology.
pub struct Topology {
    pub net: Network,
    pub rendezvous: Vec<NodeId>,
    pub publishers: Vec<NodeId>,
    pub subscribers: Vec<NodeId>,
    pub pipe: jxta::PipeAdvertisement,
    tracer: Option<SharedTraceCollector>,
    trace_nodes: Vec<(NodeId, u64)>,
}

/// The deterministic TCP address node `index` receives in a freshly built
/// network (hosts are assigned 10.0.0.1 upward in add order).
pub fn node_addr(index: usize) -> SimAddress {
    SimAddress::new(TransportKind::Tcp, 0x0A00_0001 + index as u32, 9701)
}

/// Builds `rendezvous` mesh-seeded rendezvous peers (nodes `0..rendezvous`),
/// then `publishers` and `subscribers` edge peers seeded with every
/// rendezvous address, all running `strategy` on one LAN subnet.
pub fn build(
    strategy: DisseminationConfig,
    rendezvous: usize,
    publishers: usize,
    subscribers: usize,
    seed: u64,
) -> Topology {
    assert!(rendezvous >= 1);
    let mut builder = NetworkBuilder::new(seed);
    let rdv_addrs: Vec<SimAddress> = (0..rendezvous).map(node_addr).collect();
    let mut rendezvous_ids = Vec::new();
    for i in 0..rendezvous {
        let peers: Vec<SimAddress> = rdv_addrs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a)
            .collect();
        let config = PeerConfig::rendezvous(format!("rdv-{i}"))
            .with_seeds(peers)
            .with_dissemination(strategy.clone());
        rendezvous_ids.push(builder.add_node(DeliveryApp::boxed(config), NodeConfig::lan_peer(SubnetId(0))));
    }
    let edge = |name: String| {
        DeliveryApp::boxed(
            PeerConfig::edge(name)
                .with_seeds(rdv_addrs.clone())
                .with_dissemination(strategy.clone()),
        )
    };
    let publishers = (0..publishers)
        .map(|i| builder.add_node(edge(format!("shop-{i}")), NodeConfig::lan_peer(SubnetId(0))))
        .collect();
    let subscribers = (0..subscribers)
        .map(|i| builder.add_node(edge(format!("skier-{i}")), NodeConfig::lan_peer(SubnetId(0))))
        .collect();
    let group = jxta::PeerGroup::for_event_type("Delivery", PeerId::derive("shop-0"));
    let pipe = group
        .wire_pipe()
        .expect("event-type groups embed a wire pipe")
        .clone();
    Topology {
        net: builder.build(),
        rendezvous: rendezvous_ids,
        publishers,
        subscribers,
        pipe,
        tracer: None,
        trace_nodes: Vec::new(),
    }
}

impl Topology {
    /// Runs the boot + pipe-binding phase: rendezvous leases, input pipes on
    /// every subscriber, output-pipe resolution on every publisher.
    pub fn warm_up(&mut self) {
        self.net.run_for(SimDuration::from_secs(2));
        let pipe = self.pipe.clone();
        for &subscriber in &self.subscribers {
            self.net.invoke::<DeliveryApp, _>(subscriber, |app, ctx| {
                app.peer.create_wire_input_pipe(ctx, &pipe);
            });
        }
        for &publisher in &self.publishers {
            self.net.invoke::<DeliveryApp, _>(publisher, |app, ctx| {
                app.peer.resolve_wire_output_pipe(ctx, &pipe);
            });
        }
        self.net.run_for(SimDuration::from_secs(5));
    }

    /// Publishes one tagged event from publisher `index` (does not advance
    /// the clock).
    pub fn publish_tag(&mut self, index: usize, tag: &str) {
        let pipe_id = self.pipe.pipe_id;
        let tag = tag.to_owned();
        self.net
            .invoke::<DeliveryApp, _>(self.publishers[index], |app, ctx| {
                let mut message = Message::new();
                message.add(MessageElement::text("app", "tag", tag.clone()));
                app.peer
                    .wire_send(ctx, pipe_id, &message)
                    .expect("publish failed");
            });
    }

    /// Delivery count per tag for subscriber `index`.
    pub fn delivered_counts(&self, index: usize) -> HashMap<String, usize> {
        let app = self
            .net
            .node_ref::<DeliveryApp>(self.subscribers[index])
            .expect("subscriber exists");
        let mut counts = HashMap::new();
        for tag in &app.delivered {
            *counts.entry(tag.clone()).or_insert(0usize) += 1;
        }
        counts
    }

    /// Turns on the causal tracing plane: one shared span collector across
    /// every peer of the topology plus the kernel's own datagram trace ring,
    /// so every subsequently published event can be explained end to end
    /// (see [`Topology::assert_every_copy_explained`]).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.net.enable_trace(capacity);
        let tracer: SharedTraceCollector = Rc::new(RefCell::new(TraceCollector::with_capacity(capacity)));
        let mut trace_nodes = Vec::new();
        let all = self
            .rendezvous
            .iter()
            .chain(&self.publishers)
            .chain(&self.subscribers);
        for &id in all {
            let node = self.net.node_mut::<DeliveryApp>(id).expect("node exists");
            node.peer.set_trace_collector(Rc::clone(&tracer), false);
            trace_nodes.push((id, node.peer.trace_node()));
        }
        self.tracer = Some(tracer);
        self.trace_nodes = trace_nodes;
    }

    /// The 64-bit trace handle of a simulation node, if tracing is on.
    pub fn trace_handle_of(&self, node: NodeId) -> Option<u64> {
        self.trace_nodes
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, h)| *h)
    }

    /// Every event trace id the collector currently knows about, in id order.
    pub fn traced_ids(&self) -> Vec<TraceId> {
        self.tracer
            .as_ref()
            .map(|t| t.borrow().known_ids())
            .unwrap_or_default()
    }

    /// Drop forensics for one `(subscriber, event)` pair.
    ///
    /// # Panics
    ///
    /// Panics if tracing was not enabled.
    pub fn why_missing(&self, subscriber: usize, id: TraceId) -> DeliveryVerdict {
        let handle = self
            .trace_handle_of(self.subscribers[subscriber])
            .expect("tracing not enabled");
        self.tracer
            .as_ref()
            .expect("tracing not enabled")
            .borrow()
            .why_missing(handle, id)
    }

    /// Joins a [`DeliveryVerdict::LostOnWire`] verdict against the kernel's
    /// drop log: the transport-level [`DropReason`] of the first kernel drop
    /// originating at the verdict's last instrumented hop at-or-after the
    /// send span's timestamp. `None` for other verdicts or when the kernel
    /// record was evicted from its ring.
    pub fn kernel_drop_reason(&self, verdict: &DeliveryVerdict) -> Option<DropReason> {
        let DeliveryVerdict::LostOnWire { last_send } = verdict else {
            return None;
        };
        let from = self
            .trace_nodes
            .iter()
            .find(|(_, h)| *h == last_send.node)
            .map(|(id, _)| *id)?;
        self.net
            .trace()
            .records()
            .find(|r| {
                r.at.as_micros() >= last_send.at_us
                    && matches!(
                        &r.event,
                        TraceEvent::DatagramDropped { from: f, .. } if *f == from
                    )
            })
            .and_then(|r| match &r.event {
                TraceEvent::DatagramDropped { reason, .. } => Some(*reason),
                _ => None,
            })
    }

    /// The acceptance sweep for the forensics plane: every `(subscriber,
    /// traced event)` copy must end in a *named* outcome — delivered, dropped
    /// at an instrumented hop that recorded the cause itself, or lost in the
    /// kernel with a joinable transport [`DropReason`]. Returns the
    /// `(delivered, undelivered)` copy counts.
    ///
    /// # Panics
    ///
    /// Panics on the first copy whose fate cannot be named (an "unknown
    /// outcome": no spans, never routed, or a wire loss the kernel log
    /// cannot corroborate).
    pub fn assert_every_copy_explained(&self) -> (usize, usize) {
        let ids = self.traced_ids();
        assert!(!ids.is_empty(), "nothing was traced");
        let mut delivered = 0;
        let mut undelivered = 0;
        for index in 0..self.subscribers.len() {
            for &id in &ids {
                let verdict = self.why_missing(index, id);
                match &verdict {
                    DeliveryVerdict::Delivered { .. } => delivered += 1,
                    DeliveryVerdict::DroppedAt { .. } => undelivered += 1,
                    DeliveryVerdict::LostOnWire { last_send } => {
                        assert!(
                            self.kernel_drop_reason(&verdict).is_some(),
                            "subscriber {index}, event {id}: copy left hop {} at {}us \
                             but the kernel drop log names no cause",
                            last_send.node,
                            last_send.at_us
                        );
                        undelivered += 1;
                    }
                    DeliveryVerdict::NeverRouted { .. } | DeliveryVerdict::NeverPublished => {
                        panic!("subscriber {index}, event {id}: unexplained outcome: {verdict}")
                    }
                }
            }
        }
        (delivered, undelivered)
    }

    /// The rendezvous *node id* an edge node currently leases with, if any.
    pub fn shard_of(&self, edge: NodeId) -> Option<NodeId> {
        let connected = self
            .net
            .node_ref::<DeliveryApp>(edge)?
            .peer
            .rendezvous()
            .connection()?
            .peer;
        self.rendezvous.iter().copied().find(|&id| {
            self.net
                .node_ref::<DeliveryApp>(id)
                .is_some_and(|n| n.peer.peer_id() == connected)
        })
    }
}
