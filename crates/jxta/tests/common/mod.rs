//! Shared topology scaffolding for the dissemination integration tests:
//! a bare application node that records delivered wire messages, and a
//! builder for LAN topologies with any number of mesh-linked rendezvous
//! peers, publishers and subscribers.

// Each integration-test crate compiles its own copy of this module and uses
// a different subset of it.
#![allow(dead_code)]

use jxta::peer::{CostModel, JxtaPeer, PeerConfig};
use jxta::{is_jxta_timer, DisseminationConfig, JxtaEvent, Message, MessageElement, PeerId};
use simnet::{
    Datagram, Network, NetworkBuilder, NodeConfig, NodeContext, NodeId, SimAddress, SimDuration, SimNode,
    SubnetId, TimerToken, TransportKind,
};
use std::collections::HashMap;

/// A bare application node recording every wire message delivered to it.
pub struct DeliveryApp {
    pub peer: JxtaPeer,
    pub delivered: Vec<String>,
}

impl DeliveryApp {
    pub fn boxed(config: PeerConfig) -> Box<Self> {
        Box::new(DeliveryApp {
            peer: JxtaPeer::new(config.with_costs(CostModel::free())),
            delivered: Vec::new(),
        })
    }

    fn drain(&mut self) {
        for event in self.peer.take_events() {
            if let JxtaEvent::WireMessageReceived { message, .. } = event {
                if let Some(tag) = message.element_text("app", "tag") {
                    self.delivered.push(tag);
                }
            }
        }
    }
}

impl SimNode for DeliveryApp {
    fn on_start(&mut self, ctx: &mut NodeContext<'_>) {
        self.peer.on_start(ctx);
        self.drain();
    }
    fn on_datagram(&mut self, ctx: &mut NodeContext<'_>, dg: Datagram) {
        self.peer.on_datagram(ctx, &dg);
        self.drain();
    }
    fn on_timer(&mut self, ctx: &mut NodeContext<'_>, _token: TimerToken, tag: u64) {
        if is_jxta_timer(tag) {
            self.peer.on_timer(ctx, tag);
        }
        self.drain();
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A built test topology.
pub struct Topology {
    pub net: Network,
    pub rendezvous: Vec<NodeId>,
    pub publishers: Vec<NodeId>,
    pub subscribers: Vec<NodeId>,
    pub pipe: jxta::PipeAdvertisement,
}

/// The deterministic TCP address node `index` receives in a freshly built
/// network (hosts are assigned 10.0.0.1 upward in add order).
pub fn node_addr(index: usize) -> SimAddress {
    SimAddress::new(TransportKind::Tcp, 0x0A00_0001 + index as u32, 9701)
}

/// Builds `rendezvous` mesh-seeded rendezvous peers (nodes `0..rendezvous`),
/// then `publishers` and `subscribers` edge peers seeded with every
/// rendezvous address, all running `strategy` on one LAN subnet.
pub fn build(
    strategy: DisseminationConfig,
    rendezvous: usize,
    publishers: usize,
    subscribers: usize,
    seed: u64,
) -> Topology {
    assert!(rendezvous >= 1);
    let mut builder = NetworkBuilder::new(seed);
    let rdv_addrs: Vec<SimAddress> = (0..rendezvous).map(node_addr).collect();
    let mut rendezvous_ids = Vec::new();
    for i in 0..rendezvous {
        let peers: Vec<SimAddress> = rdv_addrs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a)
            .collect();
        let config = PeerConfig::rendezvous(format!("rdv-{i}"))
            .with_seeds(peers)
            .with_dissemination(strategy.clone());
        rendezvous_ids.push(builder.add_node(DeliveryApp::boxed(config), NodeConfig::lan_peer(SubnetId(0))));
    }
    let edge = |name: String| {
        DeliveryApp::boxed(
            PeerConfig::edge(name)
                .with_seeds(rdv_addrs.clone())
                .with_dissemination(strategy.clone()),
        )
    };
    let publishers = (0..publishers)
        .map(|i| builder.add_node(edge(format!("shop-{i}")), NodeConfig::lan_peer(SubnetId(0))))
        .collect();
    let subscribers = (0..subscribers)
        .map(|i| builder.add_node(edge(format!("skier-{i}")), NodeConfig::lan_peer(SubnetId(0))))
        .collect();
    let group = jxta::PeerGroup::for_event_type("Delivery", PeerId::derive("shop-0"));
    let pipe = group
        .wire_pipe()
        .expect("event-type groups embed a wire pipe")
        .clone();
    Topology {
        net: builder.build(),
        rendezvous: rendezvous_ids,
        publishers,
        subscribers,
        pipe,
    }
}

impl Topology {
    /// Runs the boot + pipe-binding phase: rendezvous leases, input pipes on
    /// every subscriber, output-pipe resolution on every publisher.
    pub fn warm_up(&mut self) {
        self.net.run_for(SimDuration::from_secs(2));
        let pipe = self.pipe.clone();
        for &subscriber in &self.subscribers {
            self.net.invoke::<DeliveryApp, _>(subscriber, |app, ctx| {
                app.peer.create_wire_input_pipe(ctx, &pipe);
            });
        }
        for &publisher in &self.publishers {
            self.net.invoke::<DeliveryApp, _>(publisher, |app, ctx| {
                app.peer.resolve_wire_output_pipe(ctx, &pipe);
            });
        }
        self.net.run_for(SimDuration::from_secs(5));
    }

    /// Publishes one tagged event from publisher `index` (does not advance
    /// the clock).
    pub fn publish_tag(&mut self, index: usize, tag: &str) {
        let pipe_id = self.pipe.pipe_id;
        let tag = tag.to_owned();
        self.net
            .invoke::<DeliveryApp, _>(self.publishers[index], |app, ctx| {
                let mut message = Message::new();
                message.add(MessageElement::text("app", "tag", tag.clone()));
                app.peer
                    .wire_send(ctx, pipe_id, &message)
                    .expect("publish failed");
            });
    }

    /// Delivery count per tag for subscriber `index`.
    pub fn delivered_counts(&self, index: usize) -> HashMap<String, usize> {
        let app = self
            .net
            .node_ref::<DeliveryApp>(self.subscribers[index])
            .expect("subscriber exists");
        let mut counts = HashMap::new();
        for tag in &app.delivered {
            *counts.entry(tag.clone()).or_insert(0usize) += 1;
        }
        counts
    }

    /// The rendezvous *node id* an edge node currently leases with, if any.
    pub fn shard_of(&self, edge: NodeId) -> Option<NodeId> {
        let connected = self
            .net
            .node_ref::<DeliveryApp>(edge)?
            .peer
            .rendezvous()
            .connection()?
            .peer;
        self.rendezvous.iter().copied().find(|&id| {
            self.net
                .node_ref::<DeliveryApp>(id)
                .map(|n| n.peer.peer_id() == connected)
                .unwrap_or(false)
        })
    }
}
