//! Property-based tests of the JXTA substrate's encodings.

use jxta::message::{Message, MessageElement};
use jxta::xml::{escape, unescape, XmlElement};
use jxta::{PeerId, PipeId};
use proptest::prelude::*;

proptest! {
    /// XML escaping round trips for any string.
    #[test]
    fn xml_escaping_roundtrips(s in "\\PC*") {
        prop_assert_eq!(unescape(&escape(&s)).unwrap(), s);
    }

    /// Any element tree built from sane names/texts survives
    /// serialise-then-parse.
    #[test]
    fn xml_documents_roundtrip(
        name in "[A-Za-z][A-Za-z0-9_:-]{0,12}",
        attrs in proptest::collection::vec(("[A-Za-z][A-Za-z0-9]{0,6}", ".{0,16}"), 0..4),
        children in proptest::collection::vec(("[A-Za-z][A-Za-z0-9]{0,8}", ".{0,24}"), 0..5),
    ) {
        let mut doc = XmlElement::new(name);
        for (k, v) in attrs {
            doc = doc.attr(k, v);
        }
        for (tag, text) in children {
            doc = doc.text_child(tag, text.trim().to_owned());
        }
        let parsed = XmlElement::parse(&doc.to_xml()).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    /// JXTA messages round trip through their wire encoding for arbitrary
    /// element names and binary bodies.
    #[test]
    fn messages_roundtrip(
        elements in proptest::collection::vec(
            ("[a-z]{1,8}", "[A-Za-z0-9_.-]{1,12}", proptest::collection::vec(any::<u8>(), 0..256)),
            0..6
        )
    ) {
        let mut message = Message::new();
        for (ns, name, body) in elements {
            message.add(MessageElement::binary(ns, name, body));
        }
        let decoded = Message::from_bytes(&message.to_bytes()).unwrap();
        prop_assert_eq!(decoded, message);
    }

    /// Ids render to URNs that parse back to the same id, and the URN tag
    /// keeps id kinds apart.
    #[test]
    fn ids_roundtrip_as_urns(raw in any::<u128>()) {
        let peer = PeerId(jxta::Uuid(raw));
        let pipe = PipeId(jxta::Uuid(raw));
        prop_assert_eq!(peer.to_string().parse::<PeerId>().unwrap(), peer);
        prop_assert_eq!(pipe.to_string().parse::<PipeId>().unwrap(), pipe);
        prop_assert!(peer.to_string().parse::<PipeId>().is_err());
    }

    /// Discovery pattern matching: a prefix pattern accepts exactly the
    /// strings that start with the prefix.
    #[test]
    fn discovery_prefix_matching(prefix in "[a-z]{0,6}", candidate in "[a-z]{0,10}") {
        let pattern = format!("{prefix}*");
        prop_assert_eq!(
            jxta::cm::match_pattern(&pattern, &candidate),
            candidate.starts_with(&prefix)
        );
    }
}
