//! Flyweight edge peers against a real rendezvous mesh: lease acquisition,
//! pipe-filtered exactly-once delivery, shard distribution and ring failover.
//!
//! The rendezvous side runs the full, unmodified [`jxta::JxtaPeer`] stack —
//! a flyweight must be indistinguishable from a leased client on the wire.

mod common;

use common::{node_addr, DeliveryApp};
use jxta::peer::PeerConfig;
use jxta::{DisseminationConfig, FlyweightEdge, Message, MessageElement, PeerGroup, PeerId, PipeId};
use simnet::{Network, NetworkBuilder, NodeConfig, NodeId, SimDuration, SubnetId, TransportKind};
use std::collections::HashSet;

/// The pipe every flyweight in these tests subscribes to.
fn delivery_pipe() -> PipeId {
    PeerGroup::for_event_type("Delivery", PeerId::derive("shop-0"))
        .wire_pipe()
        .expect("event-type groups embed a wire pipe")
        .pipe_id
}

struct FlyweightMesh {
    net: Network,
    rendezvous: Vec<NodeId>,
    publisher: NodeId,
    flyweights: Vec<NodeId>,
}

/// `rdv_count` full rendezvous peers meshed over `rdv_count` shards, one
/// full publisher edge, and `flyweights` flyweight subscribers on one LAN.
fn build(rdv_count: usize, flyweights: usize, seed: u64) -> FlyweightMesh {
    let strategy = DisseminationConfig::rendezvous_mesh(rdv_count);
    let mut builder = NetworkBuilder::new(seed);
    let rdv_addrs: Vec<_> = (0..rdv_count).map(node_addr).collect();
    let mut rendezvous = Vec::new();
    for i in 0..rdv_count {
        let peers: Vec<_> = rdv_addrs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a)
            .collect();
        let config = PeerConfig::rendezvous(format!("rdv-{i}"))
            .with_seeds(peers)
            .with_dissemination(strategy.clone());
        rendezvous.push(builder.add_node(DeliveryApp::boxed(config), NodeConfig::lan_peer(SubnetId(0))));
    }
    let publisher = builder.add_node(
        DeliveryApp::boxed(
            PeerConfig::edge("shop-0")
                .with_seeds(rdv_addrs.clone())
                .with_dissemination(strategy.clone()),
        ),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let pipe = delivery_pipe();
    let flyweights = (0..flyweights)
        .map(|i| {
            builder.add_node(
                Box::new(FlyweightEdge::new(
                    format!("skier-{i}"),
                    rdv_addrs.clone(),
                    rdv_count,
                    pipe,
                )),
                // TCP only: a flyweight never joins multicast floods, so the
                // kernel's group scans skip it entirely.
                NodeConfig::lan_peer(SubnetId(0)).with_transports(vec![TransportKind::Tcp]),
            )
        })
        .collect();
    FlyweightMesh {
        net: builder.build(),
        rendezvous,
        publisher,
        flyweights,
    }
}

impl FlyweightMesh {
    fn publish_tag(&mut self, tag: &str) {
        let pipe_id = delivery_pipe();
        let tag = tag.to_owned();
        self.net.invoke::<DeliveryApp, _>(self.publisher, |app, ctx| {
            let mut message = Message::new();
            message.add(MessageElement::text("app", "tag", tag.clone()));
            app.peer
                .wire_send(ctx, pipe_id, &message)
                .expect("publish failed");
        });
    }

    fn flyweight(&self, index: usize) -> &FlyweightEdge {
        self.net
            .node_ref::<FlyweightEdge>(self.flyweights[index])
            .expect("flyweight exists")
    }

    fn rdv_peer_id(&self, index: usize) -> PeerId {
        self.net
            .node_ref::<DeliveryApp>(self.rendezvous[index])
            .expect("rendezvous exists")
            .peer
            .peer_id()
    }
}

#[test]
fn flyweights_lease_and_receive_exactly_once() {
    let mut mesh = build(2, 24, 7);
    mesh.net.run_for(SimDuration::from_secs(2));

    // Every flyweight holds a lease, and the shard hash spreads them over
    // both rendezvous (24 names collapsing onto one shard would defeat the
    // mesh scenario this mode exists for).
    let mut shard_population = vec![0usize; 2];
    for i in 0..24 {
        let lease = mesh.flyweight(i).lease().copied().expect("flyweight is leased");
        let shard = (0..2)
            .find(|&r| mesh.rdv_peer_id(r) == lease.rdv)
            .expect("lease names a known rendezvous");
        shard_population[shard] += 1;
    }
    assert!(
        shard_population.iter().all(|&n| n > 0),
        "both shards must hold clients, got {shard_population:?}"
    );

    mesh.net.invoke::<DeliveryApp, _>(mesh.publisher, |app, ctx| {
        let group = PeerGroup::for_event_type("Delivery", PeerId::derive("shop-0"));
        let pipe = group.wire_pipe().expect("wire pipe").clone();
        app.peer.resolve_wire_output_pipe(ctx, &pipe);
    });
    mesh.net.run_for(SimDuration::from_secs(3));

    for tag in ["quote-1", "quote-2", "quote-3"] {
        mesh.publish_tag(tag);
        mesh.net.run_for(SimDuration::from_secs(2));
    }

    for i in 0..24 {
        let fly = mesh.flyweight(i);
        assert_eq!(
            fly.received_count(),
            3,
            "flyweight {i} mailbox: {:?}",
            fly.mailbox()
        );
        let distinct: HashSet<_> = fly.mailbox().iter().map(|&(_, id)| id).collect();
        assert_eq!(distinct.len(), 3, "flyweight {i} saw a duplicate msg id");
        assert_eq!(fly.duplicates(), 0, "flyweight {i} needed dedup");
    }

    // Exactly-once also means nothing extra arrived after the fact.
    let first = mesh.flyweight(0).mailbox().to_vec();
    mesh.net.run_for(SimDuration::from_secs(5));
    assert_eq!(mesh.flyweight(0).mailbox(), &first[..]);
}

#[test]
fn flyweight_fails_over_when_home_rendezvous_is_down() {
    let mut mesh = build(2, 8, 11);
    // Kill one rendezvous before anything runs: flyweights homed on it get
    // no answer and must walk the shard ring to the survivor.
    let dead = mesh.rendezvous[0];
    mesh.net.shutdown_node(dead);
    let survivor = mesh.rdv_peer_id(1);

    // The first unanswered connect is only retried at the 45 s housekeeping
    // tick, so run past it.
    mesh.net.run_for(SimDuration::from_secs(50));

    for i in 0..8 {
        let fly = mesh.flyweight(i);
        let lease = fly.lease().copied().unwrap_or_else(|| {
            panic!(
                "flyweight {i} never leased (connects sent: {})",
                fly.connects_sent()
            )
        });
        assert_eq!(lease.rdv, survivor, "flyweight {i} leased a dead rendezvous");
    }
}

#[test]
fn flyweight_replays_bit_identically() {
    let run = |seed| {
        let mut mesh = build(2, 12, seed);
        mesh.net.run_for(SimDuration::from_secs(2));
        mesh.net.invoke::<DeliveryApp, _>(mesh.publisher, |app, ctx| {
            let group = PeerGroup::for_event_type("Delivery", PeerId::derive("shop-0"));
            let pipe = group.wire_pipe().expect("wire pipe").clone();
            app.peer.resolve_wire_output_pipe(ctx, &pipe);
        });
        mesh.net.run_for(SimDuration::from_secs(3));
        mesh.publish_tag("replay");
        mesh.net.run_for(SimDuration::from_secs(3));
        let mailboxes: Vec<Vec<_>> = (0..12).map(|i| mesh.flyweight(i).mailbox().to_vec()).collect();
        (mailboxes, mesh.net.total_stats(), mesh.net.events_processed())
    };
    assert_eq!(run(42), run(42));
    let (mailboxes, _, _) = run(42);
    assert!(
        mailboxes.iter().all(|m| m.len() == 1),
        "every flyweight hears the publish exactly once: {mailboxes:?}"
    );
}
