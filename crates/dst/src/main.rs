//! The explorer's command line: seed sweeps, single-schedule replay, and
//! schedule printing.
//!
//! ```text
//! cargo run --release -p dst -- --seeds 0..100
//! cargo run --release -p dst -- --print-schedule 42
//! cargo run --release -p dst -- --replay minimized.dst
//! ```
//!
//! Exit status: 0 when every invariant held, 1 when any seed (or the
//! replayed schedule) failed, 2 on a usage error.

use dst::{generate_with, run_schedule, sweep, GenConfig};
use simnet::SimDuration;
use std::ops::Range;
use std::process::ExitCode;

const USAGE: &str = "\
usage: dst [--seeds A..B] [--max-faults N] [--max-subscribers N]
           [--max-publishers N] [--settle <time>] [--no-minimize]
           [--print-schedule SEED] [--replay FILE]

  --seeds A..B          sweep seeds A inclusive to B exclusive (default 0..25)
  --max-faults N        fault intents per schedule (default 4)
  --max-subscribers N   largest subscriber population (default 12)
  --max-publishers N    largest publisher population (default 2)
  --settle <time>       convergence SLA after the last fault, compact time
                        form such as 180s (default 180s)
  --no-minimize         report failures without shrinking them
  --print-schedule SEED print the schedule a seed generates, then exit
  --replay FILE         run one schedule script (as printed by the explorer
                        or --print-schedule) instead of sweeping";

struct Options {
    seeds: Range<u64>,
    cfg: GenConfig,
    minimize: bool,
    print_schedule: Option<u64>,
    replay: Option<String>,
}

fn parse_seed_range(raw: &str) -> Result<Range<u64>, String> {
    let (start, end) = raw
        .split_once("..")
        .ok_or_else(|| format!("--seeds '{raw}' is not of the form A..B"))?;
    let parse = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| format!("--seeds bound '{s}' is not a u64"))
    };
    let range = parse(start)?..parse(end)?;
    if range.is_empty() {
        return Err(format!("--seeds '{raw}' is an empty range"));
    }
    Ok(range)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        seeds: 0..25,
        cfg: GenConfig::default(),
        minimize: true,
        print_schedule: None,
        replay: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => options.seeds = parse_seed_range(&value("--seeds")?)?,
            "--max-faults" => {
                options.cfg.max_faults = value("--max-faults")?
                    .parse()
                    .map_err(|_| "--max-faults needs a count".to_owned())?;
            }
            "--max-subscribers" => {
                options.cfg.max_subscribers = value("--max-subscribers")?
                    .parse()
                    .map_err(|_| "--max-subscribers needs a count".to_owned())?;
            }
            "--max-publishers" => {
                options.cfg.max_publishers = value("--max-publishers")?
                    .parse()
                    .map_err(|_| "--max-publishers needs a count".to_owned())?;
            }
            "--settle" => {
                options.cfg.settle = value("--settle")?
                    .parse::<SimDuration>()
                    .map_err(|e| format!("--settle: {e}"))?;
            }
            "--no-minimize" => options.minimize = false,
            "--print-schedule" => {
                options.print_schedule = Some(
                    value("--print-schedule")?
                        .parse()
                        .map_err(|_| "--print-schedule needs a seed".to_owned())?,
                );
            }
            "--replay" => options.replay = Some(value("--replay")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("dst: {message}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(seed) = options.print_schedule {
        print!("{}", generate_with(seed, &options.cfg));
        return ExitCode::SUCCESS;
    }

    if let Some(path) = options.replay {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("dst: cannot read {path}: {error}");
                return ExitCode::from(2);
            }
        };
        let schedule = match text.parse::<dst::FaultSchedule>() {
            Ok(schedule) => schedule,
            Err(error) => {
                eprintln!("dst: {path}: {error}");
                return ExitCode::from(2);
            }
        };
        let report = run_schedule(&schedule);
        if report.passed() {
            println!(
                "dst: replay of {path} passed ({} live subscribers, {} traced events)",
                report.live_subscribers, report.traced_events
            );
            return ExitCode::SUCCESS;
        }
        println!("dst: replay of {path} FAILED:");
        for violation in &report.violations {
            println!("  - {violation}");
        }
        return ExitCode::FAILURE;
    }

    let report = sweep(options.seeds, &options.cfg, options.minimize);
    print!("{}", report.render());
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
