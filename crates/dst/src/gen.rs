//! Seeded schedule generation: one `u64` seed → one [`FaultSchedule`],
//! deterministically.
//!
//! The generator draws a topology (strategy, flavour, shard count,
//! population) and a fault timeline from a xoshiro stream seeded with the
//! schedule seed, under *recoverability rules* that keep every generated
//! schedule inside the deployment's contract:
//!
//! - publishers are never killed — the post-settle probe wave needs them;
//! - a killed rendezvous is always revived, **except** under the sharded
//!   mesh (where the rebalancing control plane exists precisely to adopt
//!   orphaned shards), and even there at most `shards - 1` rendezvous die
//!   for good;
//! - cut overlay links are always restored, and loss bursts always heal,
//!   before the settle window begins;
//! - subscriber kills may be permanent (a dead subscriber is simply removed
//!   from the delivery obligations), but at least half the subscribers
//!   survive so the probe wave still proves something.
//!
//! Anything the rules permit is fair game for the invariant checker in
//! [`crate::run`]: a clean sweep therefore means "no schedule inside the
//! contract breaks the invariants", and the canary self-test shows that a
//! schedule outside the *implementation's* actual behaviour is caught.

use crate::schedule::{Fault, FaultSchedule, StrategyKind, Target, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{SimDuration, SimTime};
use ski_rental::Flavor;

/// Bounds for the generator; the CLI exposes these as flags so CI can run a
/// reduced sweep.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Largest subscriber population to draw (minimum population is 4).
    pub max_subscribers: usize,
    /// Largest publisher population to draw (minimum is 1).
    pub max_publishers: usize,
    /// Most fault intents per schedule (an intent may expand to a
    /// fault/recovery pair; minimum is 1).
    pub max_faults: usize,
    /// Convergence SLA stamped into every schedule. Must exceed the
    /// rebalancing plane's worst-case recovery (roughly 135 virtual seconds
    /// from kill to full adoption), or clean sweeps will flag schedules the
    /// deployment would in fact have recovered from.
    pub settle: SimDuration,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_subscribers: 12,
            max_publishers: 2,
            max_faults: 4,
            settle: SimDuration::from_secs(180),
        }
    }
}

/// Earliest fault instant: after the 30 s warm-up and the first event wave.
const WINDOW_START_S: u64 = 36;
/// Latest *initial* fault instant; recovery actions may land later.
const WINDOW_END_S: u64 = 96;

/// Generates the schedule for `seed` under the default bounds.
pub fn generate(seed: u64) -> FaultSchedule {
    generate_with(seed, &GenConfig::default())
}

/// Generates the schedule for `seed` under explicit bounds. Same seed, same
/// bounds → bit-identical schedule.
pub fn generate_with(seed: u64, cfg: &GenConfig) -> FaultSchedule {
    // Decorrelate from the simulation's own streams (the scenario is built
    // with the raw seed) without losing seed identity.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD57_FA017);

    let kind = match rng.gen_range(0..10u32) {
        0..=1 => StrategyKind::DirectFanout,
        2..=3 => StrategyKind::RendezvousTree,
        4..=7 => StrategyKind::RendezvousMesh,
        _ => StrategyKind::Gossip,
    };
    let flavor = if rng.gen_bool(0.7) {
        Flavor::SrTps
    } else {
        Flavor::JxtaWire
    };
    let shards = if kind == StrategyKind::RendezvousMesh {
        rng.gen_range(2..=4usize)
    } else {
        1
    };
    let publishers = rng.gen_range(1..=cfg.max_publishers.max(1));
    let subscribers = rng.gen_range(4..=cfg.max_subscribers.max(4));
    let topology = Topology {
        flavor,
        kind,
        shards,
        publishers,
        subscribers,
    };

    let mut faults: Vec<(SimTime, Fault)> = Vec::new();
    let mut killed_subs = 0usize;
    let mut permanent_rdv_kills = 0usize;
    let mut killed_rdv: Vec<usize> = Vec::new();
    let mut used_loss = false;
    let intents = rng.gen_range(1..=cfg.max_faults.max(1));
    for _ in 0..intents {
        let at = SimTime::from_secs(rng.gen_range(WINDOW_START_S..=WINDOW_END_S));
        match rng.gen_range(0..100u32) {
            // Permanent subscriber kill: drops that peer from the delivery
            // obligations, but never more than half the population.
            0..=29 => {
                if killed_subs < subscribers / 2 {
                    killed_subs += 1;
                    faults.push((at, Fault::Kill(Target::Sub(rng.gen_range(0..subscribers)))));
                }
            }
            // Rendezvous kill; permanent only where the adoption plane is
            // contractually obliged to cover for it.
            30..=54 => {
                let victim = rng.gen_range(0..shards);
                if killed_rdv.contains(&victim) {
                    continue;
                }
                killed_rdv.push(victim);
                faults.push((at, Fault::Kill(Target::Rdv(victim))));
                let mesh_can_adopt = kind == StrategyKind::RendezvousMesh && permanent_rdv_kills < shards - 1;
                if mesh_can_adopt && rng.gen_bool(0.5) {
                    permanent_rdv_kills += 1;
                } else {
                    let back = at + SimDuration::from_secs(rng.gen_range(10..=30u64));
                    faults.push((back, Fault::Revive(Target::Rdv(victim))));
                }
            }
            // Transient overlay cut between a subscriber and a rendezvous
            // (a no-op when that pair holds no lease — still a valid draw).
            55..=79 => {
                let sub = Target::Sub(rng.gen_range(0..subscribers));
                let rdv = Target::Rdv(rng.gen_range(0..shards));
                faults.push((at, Fault::Cut(sub, rdv)));
                let back = at + SimDuration::from_secs(rng.gen_range(5..=20u64));
                faults.push((back, Fault::Restore(sub, rdv)));
            }
            // One healed loss burst per schedule.
            _ => {
                if !used_loss {
                    used_loss = true;
                    faults.push((at, Fault::Loss(rng.gen_range(5..=30u32) as u8)));
                    let back = at + SimDuration::from_secs(rng.gen_range(5..=20u64));
                    faults.push((back, Fault::Heal));
                }
            }
        }
    }
    faults.sort_by_key(|&(t, _)| t);

    let schedule = FaultSchedule {
        seed,
        topology,
        settle: cfg.settle,
        faults,
    };
    debug_assert_eq!(schedule.validate(), Ok(()));
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..200 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b, "seed {seed} must generate identically");
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert_ne!(generate(1), generate(2), "different seeds diverge");
    }

    #[test]
    fn recoverability_rules_hold() {
        for seed in 0..300 {
            let s = generate(seed);
            let mut open_loss = 0i32;
            let mut open_cuts: Vec<(Target, Target)> = Vec::new();
            let mut dead_rdv: Vec<usize> = Vec::new();
            for &(_, fault) in &s.faults {
                match fault {
                    Fault::Kill(Target::Pub(_)) | Fault::Revive(Target::Pub(_)) => {
                        panic!("seed {seed}: publishers must never be touched")
                    }
                    Fault::Kill(Target::Rdv(i)) => dead_rdv.push(i),
                    Fault::Revive(Target::Rdv(i)) => {
                        dead_rdv.retain(|&d| d != i);
                    }
                    Fault::Cut(a, b) => open_cuts.push((a, b)),
                    Fault::Restore(a, b) => open_cuts.retain(|&pair| pair != (a, b)),
                    Fault::Loss(_) => open_loss += 1,
                    Fault::Heal => open_loss -= 1,
                    Fault::Kill(Target::Sub(_)) | Fault::Revive(Target::Sub(_)) => {}
                }
            }
            assert_eq!(open_loss, 0, "seed {seed}: loss bursts must heal");
            assert!(open_cuts.is_empty(), "seed {seed}: cuts must be restored");
            if s.topology.kind != StrategyKind::RendezvousMesh {
                assert!(
                    dead_rdv.is_empty(),
                    "seed {seed}: only the mesh may lose rendezvous permanently"
                );
            } else {
                assert!(
                    dead_rdv.len() < s.topology.shards,
                    "seed {seed}: at least one mesh rendezvous must survive"
                );
            }
        }
    }

    #[test]
    fn the_sweep_exercises_every_strategy() {
        let mut seen: Vec<StrategyKind> = Vec::new();
        for seed in 0..60 {
            let kind = generate(seed).topology.kind;
            if !seen.contains(&kind) {
                seen.push(kind);
            }
        }
        assert_eq!(
            seen.len(),
            StrategyKind::ALL.len(),
            "60 seeds cover all strategies"
        );
    }
}
