//! Deterministic fault explorer for the TPS reproduction — a
//! simulation-testing harness in the style FoundationDB made famous,
//! adapted to the discrete-event network under `simnet`.
//!
//! One `u64` seed deterministically produces one [`FaultSchedule`]: a random
//! topology (dissemination strategy, shard count, peer populations) plus a
//! random fault timeline (kills, revivals, overlay cuts, loss bursts)
//! expressed as a serializable script. The runner replays the schedule
//! under the virtual clock and checks the deployment's global invariants —
//! exactly-once probe delivery to every surviving subscriber, zero unknown
//! forensic verdicts, no stranded edges, a consistent adoption map. When a
//! schedule fails, the minimizer greedily shrinks it (dropping faults,
//! cutting population) to the smallest script that still fails, and that
//! script round-trips through [`Display`]/[`FromStr`] so it can be pasted
//! verbatim into a regression test.
//!
//! Run a sweep from the command line:
//!
//! ```text
//! cargo run --release -p dst -- --seeds 0..100
//! ```
//!
//! The crate's own self-test plants a known wrap-around bug in the
//! rebalancing plane (cargo feature `canary`, which enables
//! `dissem/dst-canary`) and asserts the explorer finds and minimizes it;
//! with the feature off, the same sweep must come back clean. See
//! `docs/dst.md` for the schedule format, the invariant catalogue and a
//! worked walkthrough.
//!
//! [`Display`]: std::fmt::Display
//! [`FromStr`]: std::str::FromStr

pub mod explore;
pub mod gen;
pub mod minimize;
pub mod run;
pub mod schedule;

pub use explore::{sweep, SeedFailure, SweepReport};
pub use gen::{generate, generate_with, GenConfig};
pub use minimize::{minimize, Minimized};
pub use run::{run_schedule, RunReport, Violation, PROBE_EVENTS_PER_PUBLISHER};
pub use schedule::{Fault, FaultSchedule, StrategyKind, Target, Topology};
