//! Greedy schedule minimization: given a failing [`FaultSchedule`], find a
//! strictly smaller one that still fails, by repeatedly trying to drop
//! faults and shrink the population and re-running deterministically.
//!
//! The search is a fixpoint of four reduction moves, each kept only if the
//! candidate still violates an invariant:
//!
//! 1. drop one scripted fault;
//! 2. shrink the subscriber population (to 1, to half, by one);
//! 3. shrink the publisher population the same way;
//! 4. shrink the shard count (mesh only, floor 2).
//!
//! Population shrinks drop any fault whose target falls out of range — the
//! role-indexed script form makes that a pure truncation, no renumbering.
//! Because every candidate run is a pure function of its schedule, the
//! minimized script plus its seed is a complete, replayable bug report.

use crate::run::{run_schedule, RunReport};
use crate::schedule::{Fault, FaultSchedule, StrategyKind, Target};

/// Upper bound on candidate runs per minimization, as a safety stop; the
/// greedy fixpoint converges far earlier on generated schedules.
const MAX_RUNS: usize = 200;

/// The outcome of one minimization.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest still-failing schedule found.
    pub schedule: FaultSchedule,
    /// The report of the minimized schedule's (failing) run.
    pub report: RunReport,
    /// How many candidate runs the search spent.
    pub runs: usize,
}

fn retain_in_range(schedule: &mut FaultSchedule) {
    let topo = schedule.topology;
    let in_range = |target: Target| match target {
        Target::Rdv(i) => i < topo.shards,
        Target::Pub(i) => i < topo.publishers,
        Target::Sub(i) => i < topo.subscribers,
    };
    schedule.faults.retain(|&(_, fault)| match fault {
        Fault::Kill(t) | Fault::Revive(t) => in_range(t),
        Fault::Cut(a, b) | Fault::Restore(a, b) => in_range(a) && in_range(b),
        Fault::Loss(_) | Fault::Heal => true,
    });
}

/// Shrinks a failing schedule to a strictly smaller one that still fails.
///
/// # Panics
///
/// Panics if `failing` does not actually fail — minimizing a passing
/// schedule is a caller bug.
pub fn minimize(failing: &FaultSchedule) -> Minimized {
    let mut runs = 0usize;
    let check = |runs: &mut usize, candidate: &FaultSchedule| -> Option<RunReport> {
        if *runs >= MAX_RUNS {
            return None;
        }
        *runs += 1;
        let report = run_schedule(candidate);
        (!report.passed()).then_some(report)
    };

    let mut best = failing.clone();
    let mut best_report = check(&mut runs, &best).expect("minimize() needs a schedule that fails");

    loop {
        let mut improved = false;

        // Move 1: drop single faults, front to back.
        let mut index = 0;
        while index < best.faults.len() {
            let mut candidate = best.clone();
            candidate.faults.remove(index);
            if let Some(report) = check(&mut runs, &candidate) {
                best = candidate;
                best_report = report;
                improved = true;
            } else {
                index += 1;
            }
        }

        // Moves 2-4: population shrinks, boldest first.
        let topo = best.topology;
        let mut shrinks: Vec<FaultSchedule> = Vec::new();
        for subscribers in [1, topo.subscribers / 2, topo.subscribers.saturating_sub(1)] {
            if (1..topo.subscribers).contains(&subscribers) {
                let mut candidate = best.clone();
                candidate.topology.subscribers = subscribers;
                shrinks.push(candidate);
            }
        }
        for publishers in [1, topo.publishers.saturating_sub(1)] {
            if (1..topo.publishers).contains(&publishers) {
                let mut candidate = best.clone();
                candidate.topology.publishers = publishers;
                shrinks.push(candidate);
            }
        }
        if topo.kind == StrategyKind::RendezvousMesh {
            for shards in [2, topo.shards.saturating_sub(1)] {
                if (2..topo.shards).contains(&shards) {
                    let mut candidate = best.clone();
                    candidate.topology.shards = shards;
                    shrinks.push(candidate);
                }
            }
        }
        for mut candidate in shrinks {
            retain_in_range(&mut candidate);
            if candidate.size() >= best.size() {
                continue;
            }
            if let Some(report) = check(&mut runs, &candidate) {
                best = candidate;
                best_report = report;
                improved = true;
                break; // population changed; restart the whole pass
            }
        }

        if !improved || runs >= MAX_RUNS {
            break;
        }
    }

    debug_assert_eq!(best.validate(), Ok(()));
    Minimized {
        schedule: best,
        report: best_report,
        runs,
    }
}
