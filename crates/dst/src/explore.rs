//! The seed sweep: generate → run → (on failure) minimize, over a seed
//! range, producing a deterministic text report.
//!
//! A sweep is a pure function of `(seed range, generator bounds)`: running
//! it twice yields bit-identical reports, which is itself one of the
//! explorer's regression tests.

use crate::gen::{generate_with, GenConfig};
use crate::minimize::{minimize, Minimized};
use crate::run::{run_schedule, RunReport};
use crate::schedule::FaultSchedule;
use std::fmt::Write as _;
use std::ops::Range;

/// One failing seed: the original schedule, its violations, and (when
/// minimization ran) the shrunk replayable script.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The generator seed that produced the failure.
    pub seed: u64,
    /// The schedule as generated.
    pub schedule: FaultSchedule,
    /// The original run's report.
    pub report: RunReport,
    /// The minimization outcome, if requested.
    pub minimized: Option<Minimized>,
}

/// The outcome of a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The swept seed range.
    pub seeds: Range<u64>,
    /// Seeds whose run violated an invariant.
    pub failures: Vec<SeedFailure>,
}

impl SweepReport {
    /// True when every seed in the range passed.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the deterministic text report the CLI prints: a PASS/FAIL
    /// line per failing seed, each with its violations and its minimized
    /// schedule ready to paste into a regression test.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let examined = self.seeds.end.saturating_sub(self.seeds.start);
        if self.clean() {
            let _ = writeln!(
                out,
                "dst: {} seeds ({}..{}) explored, all invariants held",
                examined, self.seeds.start, self.seeds.end
            );
            return out;
        }
        let _ = writeln!(
            out,
            "dst: {} of {} seeds ({}..{}) violated invariants",
            self.failures.len(),
            examined,
            self.seeds.start,
            self.seeds.end
        );
        for failure in &self.failures {
            let _ = writeln!(out, "\nseed {} FAILED:", failure.seed);
            for violation in &failure.report.violations {
                let _ = writeln!(out, "  - {violation}");
            }
            if let Some(minimized) = &failure.minimized {
                let _ = writeln!(
                    out,
                    "  minimized in {} runs ({} -> {} under the size metric):",
                    minimized.runs,
                    failure.schedule.size(),
                    minimized.schedule.size()
                );
                for line in minimized.schedule.to_string().lines() {
                    let _ = writeln!(out, "    {line}");
                }
                for violation in &minimized.report.violations {
                    let _ = writeln!(out, "    still fails: {violation}");
                }
            } else {
                let _ = writeln!(out, "  schedule (minimization off):");
                for line in failure.schedule.to_string().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        out
    }
}

/// Sweeps `seeds`, generating each schedule under `cfg`, running it, and —
/// when `minimize_failures` is set — shrinking every failure to a strictly
/// smaller replayable script.
pub fn sweep(seeds: Range<u64>, cfg: &GenConfig, minimize_failures: bool) -> SweepReport {
    let mut failures = Vec::new();
    for seed in seeds.clone() {
        let schedule = generate_with(seed, cfg);
        let report = run_schedule(&schedule);
        if report.passed() {
            continue;
        }
        let minimized = minimize_failures.then(|| minimize(&schedule));
        failures.push(SeedFailure {
            seed,
            schedule,
            report,
            minimized,
        });
    }
    SweepReport { seeds, failures }
}
