//! The fault-schedule script: a serializable description of one explorer
//! run — topology, fault timeline, convergence SLA — that round-trips
//! losslessly through [`fmt::Display`] and [`FromStr`].
//!
//! Every run of the explorer is a pure function of one [`FaultSchedule`], and
//! every schedule is a pure function of one seed, so a failure report is just
//! the schedule text plus the seed that produced it. Targets are
//! role-indexed (`rdv-1`, `pub-0`, `sub-3`) rather than raw simulation node
//! ids, which keeps a script valid while the minimizer shrinks the
//! population around it.
//!
//! # Script form
//!
//! ```text
//! dst-schedule v1
//! seed 42
//! flavor sr-tps
//! strategy rendezvous-mesh
//! shards 3
//! publishers 2
//! subscribers 8
//! settle 180s
//! at 40s kill rdv-2
//! at 55s loss 20%
//! at 63s heal
//! end
//! ```

use simnet::{SimDuration, SimTime};
use ski_rental::Flavor;
use std::fmt;
use std::str::FromStr;

pub use jxta::StrategyKind;

/// A role-indexed peer reference inside a schedule: rendezvous, publisher or
/// subscriber number `i` of the topology, independent of simulation node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// Rendezvous peer `i` (shard `i` under the mesh strategy).
    Rdv(usize),
    /// Publisher `i`.
    Pub(usize),
    /// Subscriber `i`.
    Sub(usize),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Rdv(i) => write!(f, "rdv-{i}"),
            Target::Pub(i) => write!(f, "pub-{i}"),
            Target::Sub(i) => write!(f, "sub-{i}"),
        }
    }
}

impl FromStr for Target {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_index = |raw: &str| {
            raw.parse::<usize>()
                .map_err(|_| format!("'{s}' has a non-numeric index"))
        };
        if let Some(raw) = s.strip_prefix("rdv-") {
            parse_index(raw).map(Target::Rdv)
        } else if let Some(raw) = s.strip_prefix("pub-") {
            parse_index(raw).map(Target::Pub)
        } else if let Some(raw) = s.strip_prefix("sub-") {
            parse_index(raw).map(Target::Sub)
        } else {
            Err(format!("'{s}' is not a rdv-/pub-/sub- target"))
        }
    }
}

/// One scripted fault, in role-indexed terms. The runner lowers these onto
/// [`simnet::FaultAction`]s against the concrete node ids of the built
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Shut the peer down; in-flight traffic to it is lost.
    Kill(Target),
    /// Bring a killed peer back (its `on_start` runs again).
    Revive(Target),
    /// Cut all delivery between two peers (overlay-link failure).
    Cut(Target, Target),
    /// Restore a cut pair.
    Restore(Target, Target),
    /// Start a LAN-wide loss burst of the given percentage (1..=100).
    Loss(u8),
    /// End the loss burst (restore the pristine LAN link).
    Heal,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Kill(t) => write!(f, "kill {t}"),
            Fault::Revive(t) => write!(f, "revive {t}"),
            Fault::Cut(a, b) => write!(f, "cut {a} {b}"),
            Fault::Restore(a, b) => write!(f, "restore {a} {b}"),
            Fault::Loss(pct) => write!(f, "loss {pct}%"),
            Fault::Heal => write!(f, "heal"),
        }
    }
}

impl FromStr for Fault {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut words = s.split_whitespace();
        let verb = words.next().ok_or("empty fault")?;
        let mut next = |what: &str| {
            words
                .next()
                .ok_or_else(|| format!("'{verb}' is missing its {what}"))
                .map(str::to_owned)
        };
        let fault = match verb {
            "kill" => Fault::Kill(next("target")?.parse()?),
            "revive" => Fault::Revive(next("target")?.parse()?),
            "cut" => Fault::Cut(next("first target")?.parse()?, next("second target")?.parse()?),
            "restore" => Fault::Restore(next("first target")?.parse()?, next("second target")?.parse()?),
            "loss" => {
                let raw = next("percentage")?;
                let pct: u8 = raw
                    .strip_suffix('%')
                    .ok_or_else(|| format!("loss '{raw}' needs a % suffix"))?
                    .parse()
                    .map_err(|_| format!("loss '{raw}' is not an integer percentage"))?;
                if pct == 0 || pct > 100 {
                    return Err(format!("loss {pct}% is outside 1..=100"));
                }
                Fault::Loss(pct)
            }
            "heal" => Fault::Heal,
            other => return Err(format!("unknown fault verb '{other}'")),
        };
        match words.next() {
            Some(extra) => Err(format!("trailing token '{extra}' after '{verb}'")),
            None => Ok(fault),
        }
    }
}

/// The population and strategy one schedule runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Which application flavour the edge peers run (`SR-TPS` or the bare
    /// `JXTA-WIRE` service; both carry the tracing plane).
    pub flavor: Flavor,
    /// The dissemination strategy under test.
    pub kind: StrategyKind,
    /// Rendezvous population: the shard count under
    /// [`StrategyKind::RendezvousMesh`], exactly 1 everywhere else.
    pub shards: usize,
    /// Publisher population (never killed — the probe wave needs them).
    pub publishers: usize,
    /// Subscriber population.
    pub subscribers: usize,
}

/// A complete, self-contained explorer run description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The generator seed (also the simulation seed), kept in the script so
    /// a pasted schedule reproduces the run bit for bit.
    pub seed: u64,
    /// Population and strategy.
    pub topology: Topology,
    /// Convergence SLA: how long after the last fault the deployment gets to
    /// settle before the probe wave must be delivered exactly-once.
    pub settle: SimDuration,
    /// The fault timeline, sorted by instant (ties keep script order).
    pub faults: Vec<(SimTime, Fault)>,
}

impl FaultSchedule {
    /// The minimizer's size metric: scripted faults plus population. A
    /// minimized schedule must be strictly smaller under this metric.
    pub fn size(&self) -> usize {
        self.faults.len() + self.topology.publishers + self.topology.subscribers + self.topology.shards
    }

    /// The instant of the last scripted fault, if any.
    pub fn last_fault_at(&self) -> Option<SimTime> {
        self.faults.last().map(|&(t, _)| t)
    }

    /// Checks internal consistency: every target index in range, populations
    /// non-empty, shard count matching the strategy, fault times sorted.
    pub fn validate(&self) -> Result<(), String> {
        let t = &self.topology;
        if t.publishers == 0 || t.subscribers == 0 {
            return Err("topology needs at least one publisher and one subscriber".into());
        }
        if t.kind == StrategyKind::RendezvousMesh {
            if t.shards < 2 {
                return Err("rendezvous-mesh needs at least 2 shards".into());
            }
        } else if t.shards != 1 {
            return Err(format!("strategy {} runs exactly 1 rendezvous", t.kind.label()));
        }
        let check = |target: Target| match target {
            Target::Rdv(i) if i >= t.shards => Err(format!("rdv-{i} is outside 0..{}", t.shards)),
            Target::Pub(i) if i >= t.publishers => Err(format!("pub-{i} is outside 0..{}", t.publishers)),
            Target::Sub(i) if i >= t.subscribers => Err(format!("sub-{i} is outside 0..{}", t.subscribers)),
            _ => Ok(()),
        };
        for &(_, fault) in &self.faults {
            match fault {
                Fault::Kill(x) | Fault::Revive(x) => check(x)?,
                Fault::Cut(a, b) | Fault::Restore(a, b) => {
                    check(a)?;
                    check(b)?;
                }
                Fault::Loss(_) | Fault::Heal => {}
            }
        }
        if self.faults.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err("fault timeline is not sorted by instant".into());
        }
        Ok(())
    }
}

fn flavor_token(flavor: Flavor) -> String {
    flavor.label().to_ascii_lowercase()
}

fn parse_flavor(token: &str) -> Result<Flavor, String> {
    Flavor::ALL
        .into_iter()
        .find(|f| flavor_token(*f) == token)
        .ok_or_else(|| format!("unknown flavor '{token}' (expected sr-tps, sr-jxta or jxta-wire)"))
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dst-schedule v1")?;
        writeln!(f, "seed {}", self.seed)?;
        writeln!(f, "flavor {}", flavor_token(self.topology.flavor))?;
        writeln!(f, "strategy {}", self.topology.kind.label())?;
        writeln!(f, "shards {}", self.topology.shards)?;
        writeln!(f, "publishers {}", self.topology.publishers)?;
        writeln!(f, "subscribers {}", self.topology.subscribers)?;
        writeln!(f, "settle {}", self.settle.to_compact_string())?;
        for &(when, fault) in &self.faults {
            writeln!(f, "at {} {}", when.to_compact_string(), fault)?;
        }
        writeln!(f, "end")
    }
}

impl FromStr for FaultSchedule {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut seed = None;
        let mut flavor = None;
        let mut kind = None;
        let mut shards = None;
        let mut publishers = None;
        let mut subscribers = None;
        let mut settle = None;
        let mut faults: Vec<(SimTime, Fault)> = Vec::new();
        let mut saw_header = false;
        let mut saw_end = false;

        for (index, raw) in s.lines().enumerate() {
            let line = raw.trim();
            let fail = |msg: String| format!("line {}: {msg}", index + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if saw_end {
                return Err(fail(format!("unexpected '{line}' after 'end'")));
            }
            if !saw_header {
                if line != "dst-schedule v1" {
                    return Err(fail("a schedule must start with 'dst-schedule v1'".into()));
                }
                saw_header = true;
                continue;
            }
            if line == "end" {
                saw_end = true;
                continue;
            }
            if let Some(rest) = line.strip_prefix("at ") {
                let (when, fault) = rest
                    .trim()
                    .split_once(' ')
                    .ok_or_else(|| fail("missing fault after the time".into()))?;
                let when: SimTime = when.parse().map_err(fail)?;
                if faults.last().is_some_and(|&(prev, _)| prev > when) {
                    return Err(fail("fault timeline must be sorted by instant".into()));
                }
                faults.push((when, fault.parse().map_err(fail)?));
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| fail(format!("expected '<key> <value>', got '{line}'")))?;
            let value = value.trim();
            let parse_count = |what: &str| {
                value
                    .parse::<usize>()
                    .map_err(|_| fail(format!("{what} '{value}' is not a count")))
            };
            match key {
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| fail(format!("seed '{value}' is not a u64")))?,
                    );
                }
                "flavor" => flavor = Some(parse_flavor(value).map_err(fail)?),
                "strategy" => kind = Some(value.parse::<StrategyKind>().map_err(fail)?),
                "shards" => shards = Some(parse_count("shards")?),
                "publishers" => publishers = Some(parse_count("publishers")?),
                "subscribers" => subscribers = Some(parse_count("subscribers")?),
                "settle" => settle = Some(value.parse::<SimDuration>().map_err(fail)?),
                other => return Err(fail(format!("unknown key '{other}'"))),
            }
        }

        if !saw_header {
            return Err("empty schedule (missing 'dst-schedule v1' header)".into());
        }
        if !saw_end {
            return Err("schedule is missing its 'end' line".into());
        }
        let missing = |what: &str| format!("schedule is missing its '{what}' line");
        let schedule = FaultSchedule {
            seed: seed.ok_or_else(|| missing("seed"))?,
            topology: Topology {
                flavor: flavor.ok_or_else(|| missing("flavor"))?,
                kind: kind.ok_or_else(|| missing("strategy"))?,
                shards: shards.ok_or_else(|| missing("shards"))?,
                publishers: publishers.ok_or_else(|| missing("publishers"))?,
                subscribers: subscribers.ok_or_else(|| missing("subscribers"))?,
            },
            settle: settle.ok_or_else(|| missing("settle"))?,
            faults,
        };
        schedule.validate()?;
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        FaultSchedule {
            seed: 42,
            topology: Topology {
                flavor: Flavor::SrTps,
                kind: StrategyKind::RendezvousMesh,
                shards: 3,
                publishers: 2,
                subscribers: 8,
            },
            settle: SimDuration::from_secs(180),
            faults: vec![
                (SimTime::from_secs(40), Fault::Kill(Target::Rdv(2))),
                (SimTime::from_secs(55), Fault::Loss(20)),
                (SimTime::from_secs(63), Fault::Heal),
                (SimTime::from_secs(70), Fault::Cut(Target::Sub(3), Target::Rdv(0))),
                (
                    SimTime::from_secs(80),
                    Fault::Restore(Target::Sub(3), Target::Rdv(0)),
                ),
            ],
        }
    }

    #[test]
    fn display_and_fromstr_are_a_fixpoint() {
        let schedule = sample();
        let text = schedule.to_string();
        assert!(text.starts_with("dst-schedule v1\nseed 42\n"), "{text}");
        assert!(text.contains("at 40s kill rdv-2\n"), "{text}");
        assert!(text.contains("at 55s loss 20%\n"), "{text}");
        let reparsed: FaultSchedule = text.parse().expect("schedule parses back");
        assert_eq!(reparsed, schedule);
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn comments_and_blank_lines_are_tolerated() {
        let text = format!("# minimized from seed 42\n\n{}", sample());
        let reparsed: FaultSchedule = text.parse().expect("commented schedule parses");
        assert_eq!(reparsed, sample());
    }

    #[test]
    fn malformed_schedules_are_rejected_with_line_numbers() {
        let cases = [
            ("seed 1\nend\n", "dst-schedule"),
            ("dst-schedule v1\nend\n", "missing"),
            ("dst-schedule v1\nseed x\nend\n", "line 2"),
            ("dst-schedule v1\nseed 1\nflavor tps\nend\n", "line 3"),
        ];
        for (text, expected) in cases {
            let err = text.parse::<FaultSchedule>().unwrap_err();
            assert!(
                err.contains(expected) || err.contains("missing"),
                "'{text}' should fail mentioning '{expected}', got: {err}"
            );
        }
    }

    #[test]
    fn validation_catches_out_of_range_targets_and_shard_mismatches() {
        let mut bad = sample();
        bad.faults
            .push((SimTime::from_secs(90), Fault::Kill(Target::Sub(8))));
        assert!(bad.validate().unwrap_err().contains("sub-8"));

        let mut wrong_shards = sample();
        wrong_shards.topology.kind = StrategyKind::DirectFanout;
        assert!(wrong_shards.validate().unwrap_err().contains("exactly 1"));

        let mut unsorted = sample();
        unsorted.faults.swap(0, 1);
        assert!(unsorted.validate().unwrap_err().contains("sorted"));
    }

    #[test]
    fn size_counts_faults_and_population() {
        assert_eq!(sample().size(), 5 + 2 + 8 + 3);
    }
}
