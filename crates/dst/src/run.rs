//! The schedule runner: builds the scenario a [`FaultSchedule`] describes,
//! replays its fault timeline under the discrete-event clock, then checks
//! the global invariants of the deployment's contract.
//!
//! # Run phases
//!
//! 1. **Warm-up** (30 virtual seconds): rendezvous connection, advertisement
//!    discovery, pipe binding — the harness's standard initialisation.
//! 2. **Wave A**: one traced event per publisher, delivered on the healthy
//!    topology.
//! 3. **Fault window**: the scripted faults are lowered onto
//!    [`simnet::ChurnDriver`] actions and applied at exactly their instants;
//!    **wave B** is published mid-window so events are in flight while
//!    faults land.
//! 4. **Settle**: the schedule's SLA elapses after the last fault.
//! 5. **Wave C (probe)**: two traced events per publisher; 15 further
//!    seconds drain the wires.
//!
//! # Invariants
//!
//! - **Probe delivery** — every surviving subscriber received every probe
//!   event exactly once (deterministic strategies must show a `Delivered`
//!   verdict for each; gossip is relaxed to "no duplicates and every miss
//!   explained", since probabilistic fan-out may legitimately skip a peer).
//! - **No unknown verdicts** — for *every* `(subscriber, traced event)`
//!   pair across all three waves, [`why_missing`] must return a verdict
//!   other than `NeverPublished`: the forensics plane must be able to say
//!   what happened to every copy, including ones lost mid-fault.
//! - **No stranded edges** — after settle, every live edge peer holds a
//!   lease with a live rendezvous.
//! - **Adoption coverage** (mesh only) — the union of owned hash ranges
//!   over live rendezvous covers every shard exactly once: no orphaned
//!   shards, no double owners, one consistent adoption map.
//!
//! [`why_missing`]: ski_rental::Scenario::why_missing

use crate::schedule::{Fault, FaultSchedule, StrategyKind, Target};
use jxta::peer::CostModel;
use simnet::{ChurnDriver, FaultAction, LinkSpec, NodeId, SimDuration, SimTime, SubnetId};
use ski_rental::{DisseminationConfig, Scenario};
use std::collections::BTreeSet;
use std::fmt;
use telemetry::series::RecorderConfig;
use telemetry::slo::{AlertKind, SloRule};
use telemetry::trace::{DeliveryVerdict, TraceId};

/// Events per publisher in the post-settle probe wave.
pub const PROBE_EVENTS_PER_PUBLISHER: usize = 2;
/// Wire-drain time granted after the probe wave before invariants are read.
const PROBE_DRAIN: SimDuration = SimDuration::from_secs(15);
/// Span-ring capacity; generously above the span volume of any generated
/// schedule so no forensic record is ever evicted.
const TRACE_CAPACITY: usize = 1 << 17;
/// Flight-recorder cadence: one sample per virtual second.
const RECORDER_CADENCE_US: u64 = 1_000_000;
/// Probe delivery-ratio floor under deterministic strategies: the probe wave
/// lands after settle on a healed topology, so anything short of full
/// delivery is a regression (the floor sits just under 1.0 only to dodge
/// float rounding in the ratio).
const PROBE_RATIO_FLOOR_DETERMINISTIC: f64 = 0.999;
/// Probe delivery-ratio floor under gossip, whose probabilistic fan-out may
/// legitimately skip peers.
const PROBE_RATIO_FLOOR_GOSSIP: f64 = 0.5;
/// Shard-load imbalance bound (mesh only): max allowed z-score of any live
/// rendezvous's lease count against its owned-range share.
const LOAD_ZMAX_BOUND: f64 = 4.0;
/// End-to-end p99 delivery-latency ceiling (virtual ms) for non-gossip
/// strategies under the free cost model — generous against LAN delays, and
/// far below the planted 1500 ms canary stall.
const LATENCY_P99_CEILING_MS: f64 = 750.0;

/// One invariant violation, with enough context to start forensics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The probe wave produced fewer (or more) traced publishes than
    /// publishers × [`PROBE_EVENTS_PER_PUBLISHER`].
    ProbeNotTraced {
        /// Probe events expected in the trace.
        expected: usize,
        /// Probe events actually traced.
        traced: usize,
    },
    /// A live subscriber missed a probe event under a deterministic
    /// strategy.
    MissedProbe {
        /// Subscriber index.
        subscriber: usize,
        /// The probe event.
        id: TraceId,
        /// Short verdict label from the forensics plane.
        verdict: String,
    },
    /// A live subscriber received more probe deliveries than probe events.
    DuplicateDelivery {
        /// Subscriber index.
        subscriber: usize,
        /// Probe events published.
        expected: usize,
        /// Probe deliveries observed.
        got: usize,
    },
    /// Mailbox count and span verdicts disagree: every probe event shows
    /// `Delivered`, yet the subscriber's mailbox grew by a different amount.
    CountMismatch {
        /// Subscriber index.
        subscriber: usize,
        /// Probe events published.
        expected: usize,
        /// Mailbox growth observed.
        got: usize,
    },
    /// The forensics plane returned the unknown verdict (`NeverPublished`)
    /// for an event it demonstrably knows about.
    UnexplainedMiss {
        /// Subscriber index.
        subscriber: usize,
        /// The unexplained event.
        id: TraceId,
    },
    /// A live edge peer holds no lease with any live rendezvous after the
    /// settle window.
    StrandedEdge {
        /// Role-indexed edge label (`pub-0`, `sub-3`).
        edge: String,
    },
    /// Mesh only: no live rendezvous owns this shard's hash range.
    AdoptionHole {
        /// The orphaned shard.
        shard: usize,
    },
    /// Mesh only: several live rendezvous claim this shard's hash range.
    AdoptionOverlap {
        /// The doubly-owned shard.
        shard: usize,
        /// Ring positions of the claimants.
        owners: Vec<usize>,
    },
    /// The watchdog's post-settle delivery-ratio SLO was breached and never
    /// recovered: the probe wave's delivered-copy ratio ended below the
    /// floor. Values in permille so the violation stays `Eq`-comparable.
    SloDeliveryRatio {
        /// Delivered probe copies per expected copy, in permille.
        ratio_permille: u32,
        /// The rule's floor, in permille.
        floor_permille: u32,
    },
    /// The watchdog's shard-load imbalance bound (mesh only) was still
    /// breached when invariants were read: some live rendezvous held a
    /// lease population more than the bound's z-score above its
    /// owned-range share.
    SloLoadImbalance {
        /// The observed maximum z-score, in thousandths.
        zmax_milli: i64,
        /// The rule's bound, in thousandths.
        bound_milli: i64,
    },
    /// The watchdog's end-to-end p99 latency ceiling was still breached
    /// when invariants were read.
    SloLatencyP99 {
        /// Observed p99 delivery latency, in whole virtual ms.
        p99_ms: u64,
        /// The rule's ceiling, in whole virtual ms.
        ceiling_ms: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ProbeNotTraced { expected, traced } => {
                write!(f, "probe wave traced {traced} events, expected {expected}")
            }
            Violation::MissedProbe {
                subscriber,
                id,
                verdict,
            } => write!(f, "sub-{subscriber} missed probe event {id} ({verdict})"),
            Violation::DuplicateDelivery {
                subscriber,
                expected,
                got,
            } => write!(
                f,
                "sub-{subscriber} got {got} probe deliveries, expected {expected}"
            ),
            Violation::CountMismatch {
                subscriber,
                expected,
                got,
            } => write!(
                f,
                "sub-{subscriber} mailbox grew by {got} but all {expected} probe verdicts say delivered"
            ),
            Violation::UnexplainedMiss { subscriber, id } => {
                write!(
                    f,
                    "no verdict for (sub-{subscriber}, event {id}): forensics came up empty"
                )
            }
            Violation::StrandedEdge { edge } => {
                write!(f, "{edge} holds no lease with any live rendezvous after settle")
            }
            Violation::AdoptionHole { shard } => {
                write!(
                    f,
                    "shard {shard} is owned by no live rendezvous (orphaned hash range)"
                )
            }
            Violation::AdoptionOverlap { shard, owners } => {
                write!(f, "shard {shard} is owned by {owners:?} simultaneously")
            }
            Violation::SloDeliveryRatio {
                ratio_permille,
                floor_permille,
            } => write!(
                f,
                "probe delivery ratio {}.{:03} ended below the SLO floor {}.{:03}",
                ratio_permille / 1000,
                ratio_permille % 1000,
                floor_permille / 1000,
                floor_permille % 1000
            ),
            Violation::SloLoadImbalance {
                zmax_milli,
                bound_milli,
            } => write!(
                f,
                "shard-load z-score {}.{:03} ended above the balance bound {}.{:03}",
                zmax_milli / 1000,
                zmax_milli.rem_euclid(1000),
                bound_milli / 1000,
                bound_milli.rem_euclid(1000)
            ),
            Violation::SloLatencyP99 { p99_ms, ceiling_ms } => write!(
                f,
                "p99 delivery latency {p99_ms}ms ended above the SLO ceiling {ceiling_ms}ms"
            ),
        }
    }
}

/// What one schedule run concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Every invariant violation found, in check order.
    pub violations: Vec<Violation>,
    /// Subscribers still alive when invariants were read.
    pub live_subscribers: usize,
    /// Probe events each live subscriber was expected to receive.
    pub probe_events: usize,
    /// Total traced events across all three waves.
    pub traced_events: usize,
}

impl RunReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn node_of(scenario: &Scenario, target: Target) -> NodeId {
    match target {
        Target::Rdv(i) => scenario.rendezvous_ids()[i],
        Target::Pub(i) => scenario.publisher_id(i),
        Target::Sub(i) => scenario.subscriber_id(i),
    }
}

fn lower(scenario: &Scenario, fault: Fault) -> FaultAction {
    let lan = SubnetId(0);
    match fault {
        Fault::Kill(t) => FaultAction::Kill(node_of(scenario, t)),
        Fault::Revive(t) => FaultAction::Revive(node_of(scenario, t)),
        Fault::Cut(a, b) => FaultAction::CutLink(node_of(scenario, a), node_of(scenario, b)),
        Fault::Restore(a, b) => FaultAction::RestoreLink(node_of(scenario, a), node_of(scenario, b)),
        Fault::Loss(pct) => FaultAction::SetLink(lan, lan, LinkSpec::lan().with_loss(f64::from(pct) / 100.0)),
        Fault::Heal => FaultAction::SetLink(lan, lan, LinkSpec::lan()),
    }
}

fn verdict_label(verdict: &DeliveryVerdict) -> &'static str {
    match verdict {
        DeliveryVerdict::Delivered { .. } => "delivered",
        DeliveryVerdict::DroppedAt { .. } => "dropped-at-hop",
        DeliveryVerdict::LostOnWire { .. } => "lost-on-wire",
        DeliveryVerdict::NeverRouted { .. } => "never-routed",
        DeliveryVerdict::NeverPublished => "never-published",
    }
}

/// Runs one schedule to quiescence and checks every invariant. Pure: same
/// schedule, same report, bit for bit.
///
/// # Panics
///
/// Panics if the schedule fails [`FaultSchedule::validate`] — the generator
/// and the parser both guarantee validity, so a panic here means a
/// hand-constructed schedule skipped validation.
pub fn run_schedule(schedule: &FaultSchedule) -> RunReport {
    schedule.validate().expect("schedule must be valid");
    let topo = &schedule.topology;
    let dissemination = match topo.kind {
        StrategyKind::RendezvousMesh => DisseminationConfig::rendezvous_mesh(topo.shards),
        kind => DisseminationConfig::of_kind(kind),
    };
    let mut scenario = Scenario::build_sharded(
        topo.flavor,
        dissemination,
        topo.shards,
        topo.publishers,
        topo.subscribers,
        schedule.seed,
        CostModel::free(),
    );
    scenario.enable_tracing(TRACE_CAPACITY);
    // The flight recorder samples every virtual second; the watchdog runs
    // dst's own SLO rules over the recorded series (the harness's stock
    // rules are tuned for operator consoles, not fault schedules).
    scenario.enable_recorder(RecorderConfig::with_cadence_us(RECORDER_CADENCE_US));
    let deterministic = topo.kind != StrategyKind::Gossip;
    scenario.add_slo_rule(SloRule::floor(
        AlertKind::DeliveryRatioLow,
        "dst.probe_delivery_ratio",
        if deterministic {
            PROBE_RATIO_FLOOR_DETERMINISTIC
        } else {
            PROBE_RATIO_FLOOR_GOSSIP
        },
    ));
    if topo.kind == StrategyKind::RendezvousMesh {
        scenario.add_slo_rule(SloRule::ceiling(
            AlertKind::ShardImbalance,
            "harness.shard_load_zmax",
            LOAD_ZMAX_BOUND,
        ));
    }
    if deterministic {
        scenario.add_slo_rule(SloRule::ceiling(
            AlertKind::LatencyP99High,
            "trace.latency_p99_ms",
            LATENCY_P99_CEILING_MS,
        ));
    }
    scenario.warm_up();

    // Wave A on the healthy topology.
    for publisher in 0..topo.publishers {
        scenario.publish_one(publisher);
    }

    // Fault window, with wave B published mid-window while the script is
    // half applied. Publishes cost zero virtual CPU (free cost model), so
    // no churn action slips past a publish unapplied.
    let mut churn = ChurnDriver::new();
    for &(when, fault) in &schedule.faults {
        churn.at(when, lower(&scenario, fault));
    }
    let now = scenario.now();
    let first = schedule.faults.first().map_or(now, |&(t, _)| t);
    let last = schedule.last_fault_at().unwrap_or(now);
    let mid = SimTime::from_micros(first.as_micros().midpoint(last.as_micros())).max(now);
    churn.run_until(scenario.network_mut(), mid);
    for publisher in 0..topo.publishers {
        scenario.publish_one(publisher);
    }
    let fault_horizon = last.max(scenario.now()) + SimDuration::from_millis(1);
    churn.run_until(scenario.network_mut(), fault_horizon);
    debug_assert_eq!(churn.pending(), 0);

    // Settle, then snapshot the pre-probe state.
    scenario.advance(schedule.settle);
    let pre_ids: BTreeSet<TraceId> = scenario.traced_ids().into_iter().collect();
    let pre_counts: Vec<usize> = (0..topo.subscribers)
        .map(|i| scenario.received_count(i))
        .collect();

    // Wave C: the probe.
    for publisher in 0..topo.publishers {
        for _ in 0..PROBE_EVENTS_PER_PUBLISHER {
            scenario.publish_one(publisher);
        }
    }
    scenario.advance(PROBE_DRAIN);

    let all_ids: BTreeSet<TraceId> = scenario.traced_ids().into_iter().collect();
    let probe_ids: Vec<TraceId> = all_ids.difference(&pre_ids).copied().collect();
    let expected = topo.publishers * PROBE_EVENTS_PER_PUBLISHER;

    let mut violations = Vec::new();
    if probe_ids.len() != expected {
        violations.push(Violation::ProbeNotTraced {
            expected,
            traced: probe_ids.len(),
        });
    }

    // Probe delivery per live subscriber.
    let mut live_subscribers = 0;
    let mut probe_copies_delivered = 0u64;
    for (sub, &pre_count) in pre_counts.iter().enumerate() {
        if !scenario.network().is_alive(scenario.subscriber_id(sub)) {
            continue;
        }
        live_subscribers += 1;
        let mut missed = false;
        for &id in &probe_ids {
            let verdict = scenario.why_missing(sub, id);
            let delivered = matches!(verdict, DeliveryVerdict::Delivered { .. });
            if deterministic && !delivered {
                missed = true;
                violations.push(Violation::MissedProbe {
                    subscriber: sub,
                    id,
                    verdict: verdict_label(&verdict).to_owned(),
                });
            }
        }
        let got = scenario.received_count(sub) - pre_count;
        probe_copies_delivered += got.min(expected) as u64;
        if got > expected {
            violations.push(Violation::DuplicateDelivery {
                subscriber: sub,
                expected,
                got,
            });
        } else if deterministic && !missed && got != expected {
            violations.push(Violation::CountMismatch {
                subscriber: sub,
                expected,
                got,
            });
        }
    }

    // Unknown-verdict audit: the forensics plane must explain every
    // (subscriber, event) pair it has ever heard of — dead subscribers and
    // mid-fault waves included.
    for sub in 0..topo.subscribers {
        for &id in &all_ids {
            if matches!(scenario.why_missing(sub, id), DeliveryVerdict::NeverPublished) {
                violations.push(Violation::UnexplainedMiss { subscriber: sub, id });
            }
        }
    }

    // Stranded-edge audit over every live edge peer.
    let edges = (0..topo.publishers)
        .map(|i| (format!("pub-{i}"), scenario.publisher_id(i)))
        .chain((0..topo.subscribers).map(|i| (format!("sub-{i}"), scenario.subscriber_id(i))));
    for (label, id) in edges {
        if !scenario.network().is_alive(id) {
            continue;
        }
        let leased_live = scenario
            .shard_of(id)
            .is_some_and(|rdv| scenario.network().is_alive(rdv));
        if !leased_live {
            violations.push(Violation::StrandedEdge { edge: label });
        }
    }

    // SLO invariants: feed the probe-scoped delivery ratio into the
    // watchdog (which also re-evaluates the load-balance and latency rules
    // against their latest recorded points), then lower every alert still
    // active into a violation. Edge-triggered alerts that fired mid-fault
    // and cleared during settle are recovery, not regression — only an
    // alert open at the end breaks the contract.
    let expected_copies = expected as u64 * live_subscribers as u64;
    let probe_ratio = if expected_copies == 0 {
        1.0
    } else {
        probe_copies_delivered as f64 / expected_copies as f64
    };
    scenario.record_sample_now();
    scenario.record_custom("dst.probe_delivery_ratio", probe_ratio);
    for alert in scenario.watchdog().expect("recorder enabled").active_alerts() {
        match alert.kind {
            AlertKind::DeliveryRatioLow => violations.push(Violation::SloDeliveryRatio {
                ratio_permille: (alert.value * 1000.0).round() as u32,
                floor_permille: (alert.threshold * 1000.0).round() as u32,
            }),
            AlertKind::ShardImbalance => violations.push(Violation::SloLoadImbalance {
                zmax_milli: (alert.value * 1000.0).round() as i64,
                bound_milli: (alert.threshold * 1000.0).round() as i64,
            }),
            AlertKind::LatencyP99High => violations.push(Violation::SloLatencyP99 {
                p99_ms: alert.value.round() as u64,
                ceiling_ms: alert.threshold.round() as u64,
            }),
            // dst installs no rules of the remaining kinds; an alert here
            // means a rule set drifted — surface it as a latency-style
            // breach rather than dropping it on the floor.
            AlertKind::MailboxDepthHigh | AlertKind::StaleLeases | AlertKind::HotShard => {
                violations.push(Violation::SloLatencyP99 {
                    p99_ms: alert.value.round() as u64,
                    ceiling_ms: alert.threshold.round() as u64,
                });
            }
        }
    }

    // Adoption coverage (mesh only): every shard owned by exactly one live
    // rendezvous.
    if topo.kind == StrategyKind::RendezvousMesh {
        let rows = scenario.shard_load_report();
        for shard in 0..topo.shards {
            let owners: Vec<usize> = rows
                .iter()
                .filter(|row| row.alive && row.owned_shards.contains(&shard))
                .map(|row| row.shard)
                .collect();
            match owners.len() {
                0 => violations.push(Violation::AdoptionHole { shard }),
                1 => {}
                _ => violations.push(Violation::AdoptionOverlap { shard, owners }),
            }
        }
    }

    RunReport {
        violations,
        live_subscribers,
        probe_events: expected,
        traced_events: all_ids.len(),
    }
}
