//! Explorer end-to-end tests: script round-trips, clean sweeps with
//! bit-identical reports, invariants firing on out-of-contract schedules,
//! and a pasted minimized schedule replayed as a regression test.

use dst::{generate, minimize, run_schedule, FaultSchedule, Violation};

#[test]
fn generated_schedules_roundtrip_through_display_and_fromstr() {
    for seed in 0..64 {
        let schedule = generate(seed);
        let text = schedule.to_string();
        let reparsed: FaultSchedule = text
            .parse()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        assert_eq!(reparsed, schedule, "seed {seed} round-trips");
        assert_eq!(reparsed.to_string(), text, "seed {seed} is a fixpoint");
    }
}

#[cfg(not(feature = "canary"))]
#[test]
fn clean_sweep_holds_and_reports_bit_identically() {
    use dst::{sweep, GenConfig};
    // Enough seeds to cover every strategy in debug, the acceptance bar of
    // 100 in release (mirroring the determinism suite's size split).
    let seeds = if cfg!(debug_assertions) { 8 } else { 100 };
    let first = sweep(0..seeds, &GenConfig::default(), true);
    assert!(
        first.clean(),
        "every in-contract schedule must pass:\n{}",
        first.render()
    );
    let second = sweep(0..seeds, &GenConfig::default(), true);
    assert_eq!(
        first.render(),
        second.render(),
        "same seeds, same bounds -> bit-identical report"
    );
}

/// Killing the lone rendezvous for good is *outside* the generator's
/// recoverability contract — exactly the kind of schedule the invariant
/// checker must catch when handed one by a human (or a future, bolder
/// generator).
const DEAD_RENDEZVOUS_TREE: &str = "\
dst-schedule v1
seed 7
flavor sr-tps
strategy rendezvous-tree
shards 1
publishers 1
subscribers 3
settle 120s
at 40s kill rdv-0
end
";

#[test]
fn out_of_contract_schedules_violate_invariants_and_minimize() {
    let schedule: FaultSchedule = DEAD_RENDEZVOUS_TREE.parse().expect("schedule parses");
    let report = run_schedule(&schedule);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissedProbe { .. })),
        "a dead tree root must lose probe events: {:?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StrandedEdge { .. })),
        "edges leased to a dead rendezvous are stranded: {:?}",
        report.violations
    );
    assert_eq!(report, run_schedule(&schedule), "runs are bit-reproducible");

    let minimized = minimize(&schedule);
    assert!(
        minimized.schedule.size() < schedule.size(),
        "minimization must shrink {} below {}",
        minimized.schedule.size(),
        schedule.size()
    );
    assert!(!minimized.report.passed(), "the minimized schedule still fails");
    assert_eq!(
        minimized.schedule.faults.len(),
        1,
        "the kill is the only load-bearing fault"
    );
}

/// The canary self-test's minimized output (see `tests/canary.rs`), pasted
/// verbatim: with the planted adoption-ring bug compiled *out*, the same
/// schedule must pass — the mesh adopts the dead rendezvous's shard.
#[cfg(not(feature = "canary"))]
#[test]
fn canary_minimized_schedule_is_clean_without_the_planted_bug() {
    let schedule: FaultSchedule = "\
dst-schedule v1
seed 14
flavor jxta-wire
strategy rendezvous-mesh
shards 3
publishers 1
subscribers 1
settle 180s
at 79s kill rdv-2
end
"
    .parse()
    .expect("minimized schedule parses");
    let report = run_schedule(&schedule);
    assert!(
        report.passed(),
        "adoption must cover the dead shard: {:?}",
        report.violations
    );
}
