//! The latency-canary self-test: with jxta's planted 1.5 s rendezvous
//! fan-down stall compiled in (`--features latency-canary`), every probe
//! copy still arrives — so the delivery invariants alone stay green — but
//! the watchdog's p99 latency ceiling must catch the regression as a
//! [`Violation::SloLatencyP99`]. This is the existence proof for the SLO
//! plane: a class of regression the delivery contract cannot see.

#![cfg(feature = "latency-canary")]

use dst::{generate, run_schedule, StrategyKind, Violation};

#[test]
fn the_watchdog_catches_the_planted_latency_stall_the_delivery_invariant_misses() {
    // Scan generated schedules for a deterministic strategy (the latency
    // rule is not installed under gossip) with a rendezvous-routed path:
    // direct fan-out never crosses a rendezvous, so the stall (and the
    // rule's purpose) only shows on tree and mesh runs.
    let mut checked = 0;
    for seed in 0..50 {
        let schedule = generate(seed);
        if !matches!(
            schedule.topology.kind,
            StrategyKind::RendezvousTree | StrategyKind::RendezvousMesh
        ) {
            continue;
        }
        checked += 1;
        let report = run_schedule(&schedule);
        let latency_breach = report
            .violations
            .iter()
            .find(|v| matches!(v, Violation::SloLatencyP99 { .. }));
        let Some(Violation::SloLatencyP99 { p99_ms, ceiling_ms }) = latency_breach else {
            panic!(
                "seed {seed} ({:?}): the 1500 ms stall must breach the p99 ceiling; got {:?}",
                schedule.topology.kind, report.violations
            );
        };
        assert!(
            *p99_ms >= 1500,
            "seed {seed}: observed p99 {p99_ms}ms must carry the planted 1500 ms stall"
        );
        assert!(*p99_ms > *ceiling_ms);
        // The regression the delivery plane cannot see: no live subscriber
        // missed a probe copy even though every copy was late.
        assert!(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::MissedProbe { .. } | Violation::CountMismatch { .. })),
            "seed {seed}: the stall delays copies, it must not drop them: {:?}",
            report.violations
        );
        if checked >= 3 {
            return;
        }
    }
    panic!("50 seeds produced fewer than 3 tree/mesh schedules — generator drifted");
}
