//! The canary self-test: with the planted adoption-ring bug compiled in
//! (`--features canary`, which enables `dissem/dst-canary`), the explorer
//! must find it in a bounded sweep, minimize it to a strictly smaller
//! schedule, and produce a script that replays the failure verbatim.
//!
//! The planted bug: `adopter_of` fails to wrap the rendezvous ring, so when
//! the *last* shard's rendezvous dies for good nobody adopts its hash range
//! — an orphaned shard the adoption-coverage invariant reports as an
//! `AdoptionHole`. `tests/explorer.rs` replays the minimized script with
//! the feature off and asserts it passes.

#![cfg(feature = "canary")]

use dst::{run_schedule, sweep, FaultSchedule, GenConfig, Violation};

#[test]
fn the_explorer_finds_and_minimizes_the_planted_bug() {
    let report = sweep(0..20, &GenConfig::default(), true);
    assert!(
        !report.clean(),
        "20 seeds must be enough to hit a permanent last-shard kill"
    );

    let failure = &report.failures[0];
    assert!(
        failure
            .report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AdoptionHole { .. })),
        "the planted bug orphans a shard: {:?}",
        failure.report.violations
    );

    let minimized = failure.minimized.as_ref().expect("minimization ran");
    assert!(
        minimized.schedule.size() < failure.schedule.size(),
        "minimized size {} must be strictly below the original {}",
        minimized.schedule.size(),
        failure.schedule.size()
    );
    assert!(
        minimized
            .report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AdoptionHole { .. })),
        "minimization must preserve the violation class"
    );

    // The minimized script is a complete bug report: parsing its printed
    // form back and re-running reproduces the failure bit for bit.
    let text = minimized.schedule.to_string();
    let replayed: FaultSchedule = text.parse().expect("minimized schedule round-trips");
    assert_eq!(replayed, minimized.schedule);
    assert_eq!(
        run_schedule(&replayed),
        minimized.report,
        "pasting the script back must reproduce the exact report"
    );
}
