//! # dissem — pluggable dissemination strategies for TPS propagation
//!
//! The paper's JXTA-WIRE service hard-codes one propagation policy: a
//! publisher keeps one connection per resolved listener and unicasts one copy
//! to each (which is exactly why Figure 18's invocation time grows linearly
//! with the subscriber count). This crate turns that policy into a seam: a
//! [`DisseminationStrategy`] decides, per publish, which copies go to which
//! next hops, and, per received copy, where it is forwarded.
//!
//! Four strategies ship today:
//!
//! * [`DirectFanout`] — the paper-faithful baseline: one unicast per bound
//!   listener; rendezvous peers re-propagate down their client leases.
//! * [`RendezvousTree`] — edge publishers send **one** copy to their
//!   rendezvous, which fans out down its client-lease tree. Publisher-side
//!   invocation time becomes O(1) in the subscriber count.
//! * [`RendezvousMesh`] — the sharded generalisation of the tree: subscribers
//!   are sharded by peer-id hash across N rendezvous peers joined by a full
//!   mesh of rendezvous-to-rendezvous links. Publishers still send one copy
//!   (to their own shard's rendezvous); that rendezvous forwards once across
//!   the mesh before fanning down its client leases, so the per-rendezvous
//!   fan-out shrinks to ≈ subscribers/N while the publisher cost stays O(1).
//! * [`Gossip`] — probabilistic forwarding with configurable fanout and TTL;
//!   duplicate copies are suppressed by the receivers' existing per-pipe
//!   seen-windows.
//!
//! The crate is deliberately *below* the JXTA substrate in the dependency
//! graph: strategies are generic over the peer-identifier type `P`, know
//! nothing about pipes or messages, and decide purely from a
//! [`NeighborView`] snapshot (local role, rendezvous connection, client
//! leases, bound listeners) that the wire service assembles from the
//! `RendezvousService` state it already keeps.
#![warn(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod rebalance;

pub use rebalance::{
    adopter_of, adoption_map, hot_shards, RebalanceConfig, RebalanceController, RebalanceEvent,
};

use rand::RngCore;
use std::fmt;

/// Which dissemination strategy a peer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StrategyKind {
    /// One unicast per bound listener (paper baseline).
    #[default]
    DirectFanout,
    /// One copy to the rendezvous, which fans out down its lease tree.
    RendezvousTree,
    /// Sharded rendezvous trees joined by rendezvous-to-rendezvous mesh
    /// links; one publisher copy, per-rendezvous fan-out ≈ subscribers/N.
    RendezvousMesh,
    /// Probabilistic forwarding with bounded fanout and TTL.
    Gossip,
}

impl StrategyKind {
    /// All strategies, in ablation order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::DirectFanout,
        StrategyKind::RendezvousTree,
        StrategyKind::RendezvousMesh,
        StrategyKind::Gossip,
    ];

    /// A short label for reports and benches.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::DirectFanout => "direct-fanout",
            StrategyKind::RendezvousTree => "rendezvous-tree",
            StrategyKind::RendezvousMesh => "rendezvous-mesh",
            StrategyKind::Gossip => "gossip",
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Parses the [`StrategyKind::label`] form back (`direct-fanout`,
/// `rendezvous-tree`, `rendezvous-mesh`, `gossip`) — the inverse of
/// `Display`, used by serialized fault schedules (crate `dst`).
impl std::str::FromStr for StrategyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StrategyKind::ALL
            .into_iter()
            .find(|kind| kind.label() == s)
            .ok_or_else(|| format!("unknown dissemination strategy '{s}'"))
    }
}

/// Static configuration of the dissemination subsystem, threaded through
/// `PeerConfig` and `TpsConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisseminationConfig {
    /// Which strategy to run.
    pub kind: StrategyKind,
    /// Gossip only: how many next hops each peer pushes a copy to. A fanout
    /// at least as large as the neighbourhood degenerates to flooding with
    /// duplicate suppression, which guarantees delivery on connected
    /// topologies.
    pub gossip_fanout: usize,
    /// Gossip only: hop budget of forwarded copies.
    pub gossip_ttl: u8,
    /// RendezvousMesh only: how many rendezvous shards the deployment runs.
    /// Edge peers hash themselves ([`shard_index`]) onto one of the first
    /// `mesh_shards` seed rendezvous addresses they can reach (clamped to
    /// the number of usable seeds); `0` everywhere else.
    pub mesh_shards: usize,
    /// The load-aware rebalancing controller (see [`rebalance`]): dead-shard
    /// detection thresholds, hot-shard ratio, and whether the controller
    /// runs at all. Only consulted by mesh deployments today, but carried
    /// for every strategy so an operator can flip it in one place.
    pub rebalance: RebalanceConfig,
}

impl Default for DisseminationConfig {
    fn default() -> Self {
        DisseminationConfig::direct_fanout()
    }
}

impl DisseminationConfig {
    /// The paper-faithful baseline.
    pub fn direct_fanout() -> Self {
        DisseminationConfig {
            kind: StrategyKind::DirectFanout,
            gossip_fanout: 0,
            gossip_ttl: 0,
            mesh_shards: 0,
            rebalance: RebalanceConfig::default(),
        }
    }

    /// Rendezvous-tree propagation.
    pub fn rendezvous_tree() -> Self {
        DisseminationConfig {
            kind: StrategyKind::RendezvousTree,
            ..DisseminationConfig::direct_fanout()
        }
    }

    /// Sharded rendezvous-mesh propagation over `shards` rendezvous peers.
    /// `shards == 1` degenerates to [`DisseminationConfig::rendezvous_tree`]
    /// semantics (no mesh links).
    pub fn rendezvous_mesh(shards: usize) -> Self {
        DisseminationConfig {
            kind: StrategyKind::RendezvousMesh,
            mesh_shards: shards.max(1),
            ..DisseminationConfig::direct_fanout()
        }
    }

    /// Gossip with the given fanout and TTL.
    pub fn gossip(fanout: usize, ttl: u8) -> Self {
        DisseminationConfig {
            kind: StrategyKind::Gossip,
            gossip_fanout: fanout,
            gossip_ttl: ttl,
            ..DisseminationConfig::direct_fanout()
        }
    }

    /// Builder-style override of the rebalancing-controller configuration
    /// (pass [`RebalanceConfig::disabled`] for the pre-controller mesh
    /// behaviour the `ablation_rebalance` bench compares against).
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// A configuration of the given kind with gossip defaults (fanout 4,
    /// TTL 4) when applicable. Note the gossip defaults are a genuinely
    /// probabilistic regime: on large neighbourhoods a small fraction of
    /// subscribers can miss an event; use [`DisseminationConfig::gossip`]
    /// with a fanout at least the expected neighbourhood size when delivery
    /// must be guaranteed.
    pub fn of_kind(kind: StrategyKind) -> Self {
        match kind {
            StrategyKind::DirectFanout => DisseminationConfig::direct_fanout(),
            StrategyKind::RendezvousTree => DisseminationConfig::rendezvous_tree(),
            StrategyKind::RendezvousMesh => DisseminationConfig::rendezvous_mesh(4),
            StrategyKind::Gossip => DisseminationConfig::gossip(4, 4),
        }
    }

    /// Builds the strategy instance this configuration describes.
    pub fn build<P: Copy + Eq + Ord + fmt::Debug>(&self) -> Box<dyn DisseminationStrategy<P>> {
        match self.kind {
            StrategyKind::DirectFanout => Box::new(DirectFanout),
            StrategyKind::RendezvousTree => Box::new(RendezvousTree),
            StrategyKind::RendezvousMesh => Box::new(RendezvousMesh),
            StrategyKind::Gossip => Box::new(Gossip {
                fanout: self.gossip_fanout.max(1),
                ttl: self.gossip_ttl,
            }),
        }
    }
}

/// A snapshot of the local peer's overlay neighbourhood, assembled by the
/// wire service from state the rendezvous service already tracks. Strategies
/// decide from this view alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborView<P> {
    /// The local peer.
    pub local: P,
    /// Whether the local peer offers rendezvous service.
    pub is_rendezvous: bool,
    /// The rendezvous an edge peer currently holds a lease with, if any.
    pub rendezvous: Option<P>,
    /// The clients currently holding leases with this peer (rendezvous role),
    /// in deterministic order.
    pub clients: Vec<P>,
    /// The other rendezvous peers this peer keeps mesh links with
    /// (rendezvous role, [`RendezvousMesh`] deployments), in deterministic
    /// order. Empty everywhere else.
    pub mesh_links: Vec<P>,
    /// The listeners bound to the output pipe being published on (publisher
    /// side; empty on pure forwarding hops).
    pub listeners: Vec<P>,
    /// The platform's configured hop budget (`PeerConfig::default_ttl`).
    /// Tree-shaped strategies stamp it on outgoing copies; gossip uses its
    /// own configured TTL instead.
    pub ttl_budget: u8,
}

/// What the strategy decided for one `publish` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishPlan<P> {
    /// Peers that receive one unicast copy each. Every copy costs the
    /// publisher one per-connection service charge, so the length of this
    /// list *is* the publisher-side cost profile of the strategy.
    pub unicast: Vec<P>,
    /// Whether to additionally hand one copy to the rendezvous propagation
    /// infrastructure (multicast + lease connections). Strategies set this
    /// when they have no addressed next hop, so early subscribers still hear
    /// publishers whose pipe resolution has not completed.
    pub propagate: bool,
    /// Hop budget stamped on the outgoing copies.
    pub ttl: u8,
}

/// What the strategy decided for one received copy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ForwardPlan<P> {
    /// Peers that receive one forwarded copy each (with the TTL decremented
    /// by the caller). Empty means the copy is only delivered locally.
    pub forward: Vec<P>,
}

impl<P> ForwardPlan<P> {
    /// A plan that forwards nothing.
    pub fn none() -> Self {
        ForwardPlan { forward: Vec::new() }
    }
}

/// A dissemination policy: decides next hops at publish time and at
/// forwarding time.
///
/// Strategies are deterministic state machines except where they draw from
/// the caller-supplied RNG (the simulator's per-node deterministic stream),
/// so simulation runs stay bit-for-bit reproducible.
pub trait DisseminationStrategy<P: Copy + Eq>: fmt::Debug + Send {
    /// Which strategy this is.
    fn kind(&self) -> StrategyKind;

    /// Decides where the copies of a freshly published message go.
    fn plan_publish(&mut self, view: &NeighborView<P>, rng: &mut dyn RngCore) -> PublishPlan<P>;

    /// Decides where a copy is forwarded. `origin` is the peer that
    /// *originally published* the copy (stamped in the packet) — the
    /// immediate sender of the datagram is not tracked, so a gossip
    /// re-sample may echo a copy back to the hop it came from; the echo is
    /// harmless (TTL-bounded and absorbed by the seen-window) but burns a
    /// fanout slot. `ttl` is the remaining hop budget carried by the copy.
    fn plan_forward(
        &mut self,
        view: &NeighborView<P>,
        origin: P,
        ttl: u8,
        rng: &mut dyn RngCore,
    ) -> ForwardPlan<P>;

    /// Whether `plan_forward` should also be consulted for copies the local
    /// peer has already seen. Deterministic tree strategies forward only the
    /// first copy; push gossip re-samples a fresh fanout for *every* received
    /// copy (TTL-bounded), which is what spreads a rumour past the first
    /// neighbourhood sample. Delivery to the application stays exactly-once
    /// either way — only the forwarding decision repeats.
    fn forwards_duplicates(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// DirectFanout
// ---------------------------------------------------------------------------

/// The paper baseline: one unicast per resolved listener; rendezvous peers
/// re-propagate received copies down their client leases exactly as JXTA 1.0
/// does.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectFanout;

impl<P: Copy + Eq + Ord + fmt::Debug> DisseminationStrategy<P> for DirectFanout {
    fn kind(&self) -> StrategyKind {
        StrategyKind::DirectFanout
    }

    fn plan_publish(&mut self, view: &NeighborView<P>, _rng: &mut dyn RngCore) -> PublishPlan<P> {
        listener_fanout_plan(view)
    }

    fn plan_forward(
        &mut self,
        view: &NeighborView<P>,
        origin: P,
        ttl: u8,
        _rng: &mut dyn RngCore,
    ) -> ForwardPlan<P> {
        fan_down_clients(view, origin, ttl)
    }
}

// ---------------------------------------------------------------------------
// RendezvousTree
// ---------------------------------------------------------------------------

/// Edge publishers hand one copy to their rendezvous; the rendezvous fans out
/// down its client leases. The publisher's invocation time becomes O(1) in
/// the subscriber count — the fan-out cost moves to the rendezvous.
///
/// **Reach invariant:** delivery covers exactly the peers reachable through
/// the publisher's rendezvous tree (its lease clients). On a deployment with
/// several non-interconnected rendezvous peers, listeners leased elsewhere
/// would not be reached — rendezvous-to-rendezvous links (sharded trees) are
/// a tracked roadmap item; until then this strategy assumes the
/// single-rendezvous topologies the harness builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct RendezvousTree;

impl<P: Copy + Eq + Ord + fmt::Debug> DisseminationStrategy<P> for RendezvousTree {
    fn kind(&self) -> StrategyKind {
        StrategyKind::RendezvousTree
    }

    fn plan_publish(&mut self, view: &NeighborView<P>, _rng: &mut dyn RngCore) -> PublishPlan<P> {
        if view.is_rendezvous {
            // A publishing rendezvous is already the tree root.
            let unicast: Vec<P> = view
                .clients
                .iter()
                .copied()
                .filter(|&p| p != view.local)
                .collect();
            return PublishPlan {
                propagate: unicast.is_empty(),
                ttl: view.ttl_budget,
                unicast,
            };
        }
        match view.rendezvous {
            Some(rendezvous) => PublishPlan {
                unicast: vec![rendezvous],
                propagate: false,
                ttl: view.ttl_budget,
            },
            // Disconnected edge: fall back to the baseline so isolated or
            // multicast-only deployments still deliver.
            None => listener_fanout_plan(view),
        }
    }

    fn plan_forward(
        &mut self,
        view: &NeighborView<P>,
        origin: P,
        ttl: u8,
        _rng: &mut dyn RngCore,
    ) -> ForwardPlan<P> {
        fan_down_clients(view, origin, ttl)
    }
}

// ---------------------------------------------------------------------------
// RendezvousMesh
// ---------------------------------------------------------------------------

/// Sharded rendezvous trees joined by a full mesh of
/// rendezvous-to-rendezvous links.
///
/// Subscribers (and publishers) are sharded across N rendezvous peers by a
/// hash of their peer id ([`shard_index`]); each edge holds a lease with
/// exactly one shard. A publish costs the edge publisher **one** copy — to
/// its own rendezvous — exactly as under [`RendezvousTree`]. The receiving
/// rendezvous recognises the origin as one of its own lease clients and
/// forwards the copy across every mesh link *and* down its local client
/// leases; the other rendezvous peers see an origin that is not their client
/// (the copy arrived over a mesh link) and fan down their local leases only.
/// Redundant mesh copies (full-mesh echoes) are absorbed by the receivers'
/// existing seen-windows.
///
/// Cost profile per event: publisher O(1); origin's rendezvous
/// ≈ subscribers/N + (N-1) mesh links; every other rendezvous
/// ≈ subscribers/N. Killing one rendezvous loses only its shard's in-flight
/// events — the churn tests drive exactly that scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct RendezvousMesh;

impl<P: Copy + Eq + Ord + fmt::Debug> DisseminationStrategy<P> for RendezvousMesh {
    fn kind(&self) -> StrategyKind {
        StrategyKind::RendezvousMesh
    }

    fn plan_publish(&mut self, view: &NeighborView<P>, _rng: &mut dyn RngCore) -> PublishPlan<P> {
        if view.is_rendezvous {
            // A publishing rendezvous is its own shard's root: one copy per
            // local client plus one per mesh link.
            let mut unicast: Vec<P> = view
                .clients
                .iter()
                .chain(view.mesh_links.iter())
                .copied()
                .filter(|&p| p != view.local)
                .collect();
            unicast.sort();
            unicast.dedup();
            return PublishPlan {
                propagate: unicast.is_empty(),
                ttl: view.ttl_budget,
                unicast,
            };
        }
        match view.rendezvous {
            // One copy to the shard's rendezvous — publisher cost stays O(1)
            // in both the subscriber count and the shard count.
            Some(rendezvous) => PublishPlan {
                unicast: vec![rendezvous],
                propagate: false,
                ttl: view.ttl_budget,
            },
            // Disconnected edge: fall back to the baseline so isolated or
            // multicast-only deployments still deliver.
            None => listener_fanout_plan(view),
        }
    }

    fn plan_forward(
        &mut self,
        view: &NeighborView<P>,
        origin: P,
        ttl: u8,
        _rng: &mut dyn RngCore,
    ) -> ForwardPlan<P> {
        if !view.is_rendezvous || ttl == 0 {
            return ForwardPlan::none();
        }
        let mut forward: Vec<P> = view
            .clients
            .iter()
            .copied()
            .filter(|&p| p != origin && p != view.local)
            .collect();
        // Only the origin's own rendezvous relays across the mesh: a copy
        // whose origin is not a local client arrived *over* a mesh link and
        // fans down the local shard only. This keeps the mesh traffic at
        // N-1 copies per event instead of (N-1)^2 echoes (which the
        // seen-window would drop anyway, at the cost of burnt bandwidth).
        if view.clients.contains(&origin) {
            forward.extend(
                view.mesh_links
                    .iter()
                    .copied()
                    .filter(|&p| p != origin && p != view.local),
            );
            forward.sort();
            forward.dedup();
        }
        ForwardPlan { forward }
    }
}

/// Which of `shards` rendezvous shards a peer with the given id hash belongs
/// to. Deterministic and uniform in the hash; every layer (edge connect-time
/// shard selection, harness topology builder, tests) uses this one function
/// so shard assignment cannot drift between them.
pub fn shard_index(id_hash: u128, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    // Splitmix-style finalizer so that structured ids (derived from
    // sequential names) still spread uniformly.
    let mut z = (id_hash as u64) ^ ((id_hash >> 64) as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

/// Probabilistic push gossip: every received copy (duplicates included) is
/// pushed on to at most `fanout` uniformly chosen neighbours until the TTL
/// runs out; the receivers' seen-window dedup keeps *delivery* exactly-once.
/// Coverage is probabilistic — with a fanout at least the neighbourhood size
/// it degenerates to flooding (guaranteed delivery on connected topologies);
/// below that, a small fraction of subscribers can miss a given event, which
/// is the classic gossip trade-off the ablation bench explores.
#[derive(Debug, Clone, Copy)]
pub struct Gossip {
    /// Copies pushed per hop.
    pub fanout: usize,
    /// Hop budget stamped on published messages.
    pub ttl: u8,
}

impl Gossip {
    /// Uniformly samples `count` peers from `candidates` (all of them when
    /// `count >= candidates.len()`), via a partial Fisher-Yates shuffle.
    fn sample<P: Copy>(candidates: &mut Vec<P>, count: usize, rng: &mut dyn RngCore) -> Vec<P> {
        if candidates.len() <= count {
            return std::mem::take(candidates);
        }
        for i in 0..count {
            let j = i + (rng.next_u64() as usize) % (candidates.len() - i);
            candidates.swap(i, j);
        }
        candidates[..count].to_vec()
    }
}

impl<P: Copy + Eq + Ord + fmt::Debug> DisseminationStrategy<P> for Gossip {
    fn kind(&self) -> StrategyKind {
        StrategyKind::Gossip
    }

    fn plan_publish(&mut self, view: &NeighborView<P>, rng: &mut dyn RngCore) -> PublishPlan<P> {
        let mut candidates = neighbors(view, None);
        let unicast = Gossip::sample(&mut candidates, self.fanout, rng);
        PublishPlan {
            unicast: unicast.clone(),
            propagate: unicast.is_empty(),
            ttl: self.ttl,
        }
    }

    fn plan_forward(
        &mut self,
        view: &NeighborView<P>,
        origin: P,
        ttl: u8,
        rng: &mut dyn RngCore,
    ) -> ForwardPlan<P> {
        if ttl == 0 {
            return ForwardPlan::none();
        }
        let mut candidates = neighbors(view, Some(origin));
        ForwardPlan {
            forward: Gossip::sample(&mut candidates, self.fanout, rng),
        }
    }

    fn forwards_duplicates(&self) -> bool {
        true
    }
}

/// The deduplicated overlay neighbours of the local peer: bound listeners,
/// the lease clients and mesh links (rendezvous role) and the connected
/// rendezvous (edge role), minus the local peer and `exclude`.
fn neighbors<P: Copy + Eq + Ord>(view: &NeighborView<P>, exclude: Option<P>) -> Vec<P> {
    let mut all: Vec<P> = view
        .listeners
        .iter()
        .chain(view.clients.iter())
        .chain(view.mesh_links.iter())
        .chain(view.rendezvous.iter())
        .copied()
        .filter(|&p| p != view.local && Some(p) != exclude)
        .collect();
    all.sort();
    all.dedup();
    all
}

/// The paper-baseline publish plan: one unicast per bound listener, falling
/// back to rendezvous propagation while nothing is resolved yet. Shared by
/// `DirectFanout` and by `RendezvousTree`'s disconnected-edge fallback.
fn listener_fanout_plan<P: Copy + Eq>(view: &NeighborView<P>) -> PublishPlan<P> {
    PublishPlan {
        unicast: view
            .listeners
            .iter()
            .copied()
            .filter(|&p| p != view.local)
            .collect(),
        propagate: view.listeners.is_empty(),
        ttl: view.ttl_budget,
    }
}

/// The JXTA 1.0 forwarding rule shared by `DirectFanout` and
/// `RendezvousTree`: only rendezvous peers forward, fanning one copy down
/// every client lease except the origin's.
fn fan_down_clients<P: Copy + Eq>(view: &NeighborView<P>, origin: P, ttl: u8) -> ForwardPlan<P> {
    if !view.is_rendezvous || ttl == 0 {
        return ForwardPlan::none();
    }
    ForwardPlan {
        forward: view
            .clients
            .iter()
            .copied()
            .filter(|&p| p != origin && p != view.local)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type Peer = u32;

    fn view(local: Peer, is_rendezvous: bool) -> NeighborView<Peer> {
        NeighborView {
            local,
            is_rendezvous,
            rendezvous: None,
            clients: vec![],
            mesh_links: vec![],
            listeners: vec![],
            ttl_budget: 3,
        }
    }

    #[test]
    fn direct_fanout_unicasts_to_every_listener() {
        let mut strategy = DirectFanout;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(1, false);
        v.listeners = vec![2, 3, 4];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(plan.unicast, vec![2, 3, 4]);
        assert!(!plan.propagate);

        v.listeners.clear();
        let plan = strategy.plan_publish(&v, &mut rng);
        assert!(plan.unicast.is_empty());
        assert!(plan.propagate, "no listeners resolved: fall back to propagation");
    }

    #[test]
    fn direct_fanout_forwarding_is_rendezvous_only() {
        let mut strategy = DirectFanout;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(9, true);
        v.clients = vec![2, 3, 7];
        let plan = strategy.plan_forward(&v, 3, 2, &mut rng);
        assert_eq!(plan.forward, vec![2, 7], "origin is excluded from re-propagation");
        let edge_plan = DirectFanout.plan_forward(&view(1, false), 3, 2, &mut rng);
        assert!(edge_plan.forward.is_empty());
        let exhausted = strategy.plan_forward(&v, 3, 0, &mut rng);
        assert!(exhausted.forward.is_empty(), "TTL zero stops forwarding");
    }

    #[test]
    fn rendezvous_tree_publisher_sends_one_copy() {
        let mut strategy = RendezvousTree;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(1, false);
        v.rendezvous = Some(9);
        v.listeners = vec![2, 3, 4, 5, 6, 7, 8];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(
            plan.unicast,
            vec![9],
            "publisher cost is O(1) regardless of listener count"
        );
    }

    #[test]
    fn rendezvous_tree_falls_back_without_a_lease() {
        let mut strategy = RendezvousTree;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(1, false);
        v.listeners = vec![2, 3];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(plan.unicast, vec![2, 3]);
    }

    #[test]
    fn rendezvous_tree_root_fans_out_to_clients() {
        let mut strategy = RendezvousTree;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(9, true);
        v.clients = vec![1, 2, 3];
        let publish = strategy.plan_publish(&v, &mut rng);
        assert_eq!(publish.unicast, vec![1, 2, 3]);
        let forward = strategy.plan_forward(&v, 1, 3, &mut rng);
        assert_eq!(forward.forward, vec![2, 3]);
    }

    #[test]
    fn mesh_edge_publisher_sends_one_copy_to_its_shard() {
        let mut strategy = RendezvousMesh;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(1, false);
        v.rendezvous = Some(9);
        v.listeners = vec![2, 3, 4, 5, 6, 7, 8];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(
            plan.unicast,
            vec![9],
            "publisher cost is O(1) whatever the subscriber or shard count"
        );
        assert!(!plan.propagate);

        // Disconnected edges fall back to the listener baseline.
        v.rendezvous = None;
        let fallback = strategy.plan_publish(&v, &mut rng);
        assert_eq!(fallback.unicast.len(), 7);
    }

    #[test]
    fn mesh_origin_rendezvous_relays_to_mesh_and_clients() {
        let mut strategy = RendezvousMesh;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(10, true);
        v.clients = vec![1, 2, 3];
        v.mesh_links = vec![11, 12];
        // Origin 1 is a local client: this rendezvous is its shard root —
        // relay across the mesh and fan down the other local leases.
        let plan = strategy.plan_forward(&v, 1, 2, &mut rng);
        assert_eq!(plan.forward, vec![2, 3, 11, 12]);
        // Origin 7 is not a local client: the copy arrived over a mesh link
        // — fan down the local shard only, never back into the mesh.
        let plan = strategy.plan_forward(&v, 7, 2, &mut rng);
        assert_eq!(plan.forward, vec![1, 2, 3]);
        // Edge peers and exhausted TTLs never forward.
        assert!(strategy
            .plan_forward(&view(1, false), 1, 2, &mut rng)
            .forward
            .is_empty());
        assert!(strategy.plan_forward(&v, 1, 0, &mut rng).forward.is_empty());
    }

    #[test]
    fn mesh_publishing_rendezvous_covers_clients_and_mesh() {
        let mut strategy = RendezvousMesh;
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = view(10, true);
        v.clients = vec![1, 2];
        v.mesh_links = vec![11];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(plan.unicast, vec![1, 2, 11]);
        assert!(!plan.propagate);
    }

    #[test]
    fn shard_index_is_stable_bounded_and_spread() {
        assert_eq!(shard_index(12345, 1), 0);
        assert_eq!(shard_index(12345, 0), 0);
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0usize; shards];
            for i in 0..1_000u128 {
                let shard = shard_index(i * 0x1_0000_0001, shards);
                assert!(shard < shards);
                assert_eq!(shard, shard_index(i * 0x1_0000_0001, shards), "deterministic");
                counts[shard] += 1;
            }
            let expected = 1_000 / shards;
            assert!(
                counts.iter().all(|&c| c > expected / 2 && c < expected * 2),
                "{shards} shards spread badly: {counts:?}"
            );
        }
    }

    #[test]
    fn gossip_respects_fanout_and_ttl() {
        let mut strategy = Gossip { fanout: 2, ttl: 4 };
        let mut rng = StdRng::seed_from_u64(42);
        let mut v = view(1, false);
        v.rendezvous = Some(9);
        v.listeners = vec![2, 3, 4, 5];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(plan.unicast.len(), 2);
        assert_eq!(plan.ttl, 4);
        assert!(plan.unicast.iter().all(|p| [2, 3, 4, 5, 9].contains(p)));

        let forward = strategy.plan_forward(&v, 2, 1, &mut rng);
        assert!(forward.forward.len() <= 2);
        assert!(!forward.forward.contains(&2), "origin never gets a copy back");
        let exhausted = strategy.plan_forward(&v, 2, 0, &mut rng);
        assert!(exhausted.forward.is_empty());
    }

    #[test]
    fn gossip_with_large_fanout_floods_all_neighbors() {
        let mut strategy = Gossip { fanout: 64, ttl: 4 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = view(9, true);
        v.clients = vec![1, 2, 3, 4];
        let plan = strategy.plan_publish(&v, &mut rng);
        assert_eq!(plan.unicast, vec![1, 2, 3, 4]);
    }

    #[test]
    fn config_builds_the_matching_strategy() {
        for kind in StrategyKind::ALL {
            let strategy: Box<dyn DisseminationStrategy<Peer>> = DisseminationConfig::of_kind(kind).build();
            assert_eq!(strategy.kind(), kind);
        }
        assert_eq!(DisseminationConfig::default().kind, StrategyKind::DirectFanout);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StrategyKind::DirectFanout.to_string(), "direct-fanout");
        assert_eq!(StrategyKind::RendezvousTree.to_string(), "rendezvous-tree");
        assert_eq!(StrategyKind::RendezvousMesh.to_string(), "rendezvous-mesh");
        assert_eq!(StrategyKind::Gossip.to_string(), "gossip");
    }
}
