//! The load-aware shard rebalancing controller.
//!
//! The sharded rendezvous mesh (PR 3) confines a rendezvous failure to its
//! own shard, but until this controller existed the *only* way that shard
//! ever heard events again was the dead rendezvous being revived. The churn
//! tests scripted exactly that; production cannot. This module closes the
//! loop: fed by the wire-level load-report plane (every rendezvous gossips a
//! `telemetry::LoadReport` across its mesh links on each housekeeping tick),
//! it declares a shard **dead** when its rendezvous misses
//! [`RebalanceConfig::miss_threshold`] consecutive report intervals — by
//! construction longer than any transient outage the lease lifetime already
//! absorbs — and **hot** when its lease count exceeds a configurable ratio
//! of the mean.
//!
//! Recovery is deterministic and needs no coordination: every surviving
//! rendezvous runs the same controller over the same gossiped table, and the
//! adoption rule ([`adopter_of`]) is a pure function of the alive set — the
//! dead shard's hash range is adopted by the **next surviving shard in ring
//! order**. Edge peers converge on the same answer independently: when their
//! lease expires un-renewed they walk the same ring
//! (`home + 1, home + 2, …` mod N) until a rendezvous answers, which is the
//! adopter. No re-shard map ever has to travel on the wire.
//!
//! The controller is deliberately *below* the protocol stack (like the
//! strategies): it knows nothing about pipes, addresses or simulation time —
//! callers feed it peer identifiers and millisecond timestamps from whatever
//! clock they run.

use std::collections::{BTreeMap, BTreeSet};

/// Static configuration of the rebalancing controller, carried inside
/// [`crate::DisseminationConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Whether the load-report plane runs at all — reports, gossip, dead
    /// detection and edge failover together. Disabled, the stack behaves
    /// (traffic included) as before the controller existed: a dead shard
    /// stays dead until its rendezvous is revived (the `ablation_rebalance`
    /// bench measures exactly this difference).
    pub enabled: bool,
    /// How many consecutive report intervals a rendezvous may miss before
    /// its shard is declared dead.
    pub miss_threshold: u32,
    /// A shard is flagged hot when `lease_count * 100` exceeds
    /// `hot_ratio_percent * mean_lease_count` (e.g. `200` = twice the mean).
    /// `0` disables hot detection.
    pub hot_ratio_percent: u32,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: true,
            miss_threshold: 3,
            hot_ratio_percent: 200,
        }
    }
}

impl RebalanceConfig {
    /// A controller that never intervenes (the pre-PR-5 behaviour).
    pub fn disabled() -> Self {
        RebalanceConfig {
            enabled: false,
            ..RebalanceConfig::default()
        }
    }

    /// The dead-detection horizon in milliseconds for a given report
    /// interval: a peer unheard for this long has missed
    /// `miss_threshold` consecutive intervals.
    pub fn dead_after_ms(&self, interval_ms: u64) -> u64 {
        u64::from(self.miss_threshold.max(1)) * interval_ms
    }
}

/// What [`RebalanceController::tick`] observed changing this interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceEvent<P> {
    /// The peer missed the threshold of report intervals and its shard is
    /// now considered dead.
    ShardDead(P),
    /// A report arrived from a peer previously declared dead.
    ShardRevived(P),
}

/// Tracks per-shard health from load-report arrival times and emits
/// dead/revived transitions. One instance runs inside every rendezvous (and
/// anywhere else that watches the load table); identical inputs produce
/// identical verdicts everywhere.
#[derive(Debug, Clone, Default)]
pub struct RebalanceController<P: Copy + Ord> {
    config: RebalanceConfig,
    last_heard_ms: BTreeMap<P, u64>,
    dead: BTreeSet<P>,
}

impl<P: Copy + Ord> RebalanceController<P> {
    /// Creates a controller with the given configuration.
    pub fn new(config: RebalanceConfig) -> Self {
        RebalanceController {
            config,
            last_heard_ms: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    /// The configuration the controller runs.
    pub fn config(&self) -> RebalanceConfig {
        self.config
    }

    /// Records a load report heard from `peer` at `now_ms`. Returns
    /// `Some(ShardRevived)` if the peer had been declared dead.
    pub fn note_report(&mut self, peer: P, now_ms: u64) -> Option<RebalanceEvent<P>> {
        self.last_heard_ms.insert(peer, now_ms);
        if self.dead.remove(&peer) {
            Some(RebalanceEvent::ShardRevived(peer))
        } else {
            None
        }
    }

    /// Runs one detection pass at `now_ms` with reports expected every
    /// `interval_ms`: peers unheard past the miss threshold transition to
    /// dead. Returns the transitions of this pass, in peer order. A
    /// disabled controller never declares anything.
    pub fn tick(&mut self, now_ms: u64, interval_ms: u64) -> Vec<RebalanceEvent<P>> {
        if !self.config.enabled {
            return Vec::new();
        }
        let horizon = self.config.dead_after_ms(interval_ms);
        let mut events = Vec::new();
        for (&peer, &heard) in &self.last_heard_ms {
            if now_ms.saturating_sub(heard) >= horizon && !self.dead.contains(&peer) {
                events.push(RebalanceEvent::ShardDead(peer));
            }
        }
        for event in &events {
            if let RebalanceEvent::ShardDead(peer) = event {
                self.dead.insert(*peer);
            }
        }
        events
    }

    /// Whether `peer` is currently considered dead.
    pub fn is_dead(&self, peer: P) -> bool {
        self.dead.contains(&peer)
    }

    /// The peers currently considered dead, in order.
    pub fn dead_peers(&self) -> Vec<P> {
        self.dead.iter().copied().collect()
    }

    /// Forgets a peer entirely (topology change).
    pub fn forget(&mut self, peer: P) {
        self.last_heard_ms.remove(&peer);
        self.dead.remove(&peer);
    }
}

/// The surviving shard that adopts dead shard `dead_index`: the next alive
/// index in ring order. Returns `None` when every shard is dead (nothing
/// can adopt) or the index is out of range.
pub fn adopter_of(dead_index: usize, alive: &[bool]) -> Option<usize> {
    let n = alive.len();
    if dead_index >= n {
        return None;
    }
    // The `dst` explorer's planted canary (see crates/dst/tests/canary.rs):
    // with the `dst-canary` feature on, the adoption ring fails to wrap, so
    // the last shard's hash range is orphaned when its rendezvous dies —
    // exactly the class of off-by-one the adoption-coverage invariant must
    // catch. Compiled out entirely in normal builds.
    #[cfg(feature = "dst-canary")]
    if dead_index + 1 == n {
        return None;
    }
    (1..n)
        .map(|step| (dead_index + step) % n)
        .find(|&candidate| alive[candidate])
}

/// The full ownership map under the given alive set: `map[i]` is the shard
/// that currently serves hash range `i` (itself when alive, its ring
/// adopter when dead, `None` when the whole mesh is down).
pub fn adoption_map(alive: &[bool]) -> Vec<Option<usize>> {
    (0..alive.len())
        .map(|index| {
            if alive[index] {
                Some(index)
            } else {
                adopter_of(index, alive)
            }
        })
        .collect()
}

/// The shards whose lease count exceeds `hot_ratio_percent` of the mean —
/// the operator-facing hot-shard flag of `shard_load_report`. `0` disables
/// detection; shards need at least one lease overall to avoid flagging an
/// idle mesh.
pub fn hot_shards(lease_counts: &[u32], hot_ratio_percent: u32) -> Vec<usize> {
    if hot_ratio_percent == 0 || lease_counts.is_empty() {
        return Vec::new();
    }
    let total: u64 = lease_counts.iter().map(|&c| u64::from(c)).sum();
    if total == 0 {
        return Vec::new();
    }
    // lease_count / mean > ratio/100  ⟺  lease_count * len * 100 > ratio * total
    lease_counts
        .iter()
        .enumerate()
        .filter(|&(_, &count)| {
            u64::from(count) * lease_counts.len() as u64 * 100 > u64::from(hot_ratio_percent) * total
        })
        .map(|(index, _)| index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_horizon() {
        let config = RebalanceConfig::default();
        assert!(config.enabled);
        assert_eq!(config.miss_threshold, 3);
        assert_eq!(config.dead_after_ms(30_000), 90_000);
        assert!(!RebalanceConfig::disabled().enabled);
        // A zero threshold still needs one full interval.
        let zero = RebalanceConfig {
            miss_threshold: 0,
            ..RebalanceConfig::default()
        };
        assert_eq!(zero.dead_after_ms(1_000), 1_000);
    }

    #[test]
    fn controller_declares_dead_after_k_missed_intervals() {
        let mut controller: RebalanceController<u32> = RebalanceController::new(RebalanceConfig {
            enabled: true,
            miss_threshold: 3,
            hot_ratio_percent: 0,
        });
        controller.note_report(7, 0);
        assert!(controller.tick(30_000, 30_000).is_empty(), "1 missed interval");
        assert!(controller.tick(60_000, 30_000).is_empty(), "2 missed intervals");
        assert_eq!(
            controller.tick(90_000, 30_000),
            vec![RebalanceEvent::ShardDead(7)],
            "3 missed intervals cross the threshold"
        );
        assert!(controller.is_dead(7));
        assert_eq!(controller.dead_peers(), vec![7]);
        assert!(
            controller.tick(120_000, 30_000).is_empty(),
            "death is reported once, not every tick"
        );
    }

    #[test]
    fn reports_keep_peers_alive_and_revive_dead_ones() {
        let mut controller: RebalanceController<u32> = RebalanceController::new(RebalanceConfig::default());
        controller.note_report(1, 0);
        controller.note_report(1, 60_000);
        assert!(controller.tick(120_000, 30_000).is_empty(), "refreshed in time");
        assert_eq!(
            controller.tick(150_000, 30_000),
            vec![RebalanceEvent::ShardDead(1)]
        );
        assert_eq!(
            controller.note_report(1, 151_000),
            Some(RebalanceEvent::ShardRevived(1))
        );
        assert!(!controller.is_dead(1));
        assert_eq!(controller.note_report(1, 152_000), None, "already alive");
    }

    #[test]
    fn disabled_controller_never_intervenes() {
        let mut controller: RebalanceController<u32> = RebalanceController::new(RebalanceConfig::disabled());
        controller.note_report(1, 0);
        assert!(controller.tick(1_000_000, 30_000).is_empty());
        assert!(!controller.is_dead(1));
    }

    #[test]
    fn forget_drops_all_state() {
        let mut controller: RebalanceController<u32> = RebalanceController::new(RebalanceConfig::default());
        controller.note_report(1, 0);
        controller.tick(90_000, 30_000);
        assert!(controller.is_dead(1));
        controller.forget(1);
        assert!(!controller.is_dead(1));
        assert!(controller.tick(200_000, 30_000).is_empty(), "no residue");
    }

    #[test]
    fn adoption_walks_the_ring_to_the_next_survivor() {
        let alive = [true, false, false, true];
        assert_eq!(adopter_of(1, &alive), Some(3));
        assert_eq!(adopter_of(2, &alive), Some(3));
        assert_eq!(
            adopter_of(0, &alive),
            Some(3),
            "an alive shard's adopter is moot but defined"
        );
        assert_eq!(adopter_of(3, &alive), Some(0), "ring wraps");
        assert_eq!(adopter_of(9, &alive), None, "out of range");
        assert_eq!(adopter_of(0, &[false, false]), None, "all dead: nobody adopts");
        assert_eq!(adoption_map(&alive), vec![Some(0), Some(3), Some(3), Some(3)]);
        assert_eq!(adoption_map(&[]), Vec::<Option<usize>>::new());
    }

    #[test]
    fn identical_alive_sets_give_identical_maps_everywhere() {
        // The decentralised-consistency property: any two controllers that
        // agree on the alive set agree on the full ownership map.
        let alive = [false, true, true, false, true];
        assert_eq!(adoption_map(&alive), adoption_map(&alive));
        assert_eq!(adoption_map(&alive)[0], Some(1));
        assert_eq!(adoption_map(&alive)[3], Some(4));
    }

    #[test]
    fn hot_shards_flag_outliers_only() {
        assert_eq!(hot_shards(&[10, 1, 1, 0], 200), vec![0], "10 vs mean 3 is hot");
        assert!(hot_shards(&[3, 3, 3, 3], 200).is_empty(), "balanced mesh");
        assert!(hot_shards(&[0, 0], 200).is_empty(), "idle mesh is never hot");
        assert!(hot_shards(&[10, 1], 0).is_empty(), "ratio 0 disables detection");
        assert!(hot_shards(&[], 200).is_empty());
        // Exactly at the ratio is not hot (strict inequality).
        assert!(hot_shards(&[2, 1, 1, 0], 200).is_empty());
    }
}
