//! A small decoupled chat application over TPS: every participant both
//! publishes and subscribes to `ChatMessage`, illustrating the many-to-many
//! (space- and time-decoupled) interaction the paper motivates.
//!
//! Run with `cargo run --example chat_room`.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{CollectingCallback, IgnoreExceptions, TpsConfig, TpsEvent, TpsHost, TpsInterfaceExt};

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct ChatMessage {
    from: String,
    body: String,
}
impl TpsEvent for ChatMessage {
    const TYPE_NAME: &'static str = "ChatMessage";
}

fn main() {
    let mut builder = NetworkBuilder::new(5);
    let _rdv = builder.add_node(
        TpsHost::boxed(TpsConfig::new("rdv").with_peer(jxta::PeerConfig::rendezvous("rdv"))),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let names = ["alice", "bob", "carol"];
    let peers: Vec<_> = names
        .iter()
        .map(|name| {
            builder.add_node(
                TpsHost::boxed(TpsConfig::new(*name).with_seeds(vec![rdv_addr])),
                NodeConfig::lan_peer(SubnetId(0)),
            )
        })
        .collect();
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));

    // Everyone subscribes.
    for peer in &peers {
        net.invoke::<TpsHost, _>(*peer, |host, ctx| {
            let (callback, _sink) = CollectingCallback::<ChatMessage>::new();
            host.engine
                .interface::<ChatMessage>()
                .subscribe(ctx, callback, IgnoreExceptions);
        });
    }
    net.run_for(SimDuration::from_secs(15));

    // Everyone says hello.
    for (index, peer) in peers.iter().enumerate() {
        let from = names[index].to_owned();
        net.invoke::<TpsHost, _>(*peer, |host, ctx| {
            host.engine
                .interface::<ChatMessage>()
                .publish(
                    ctx,
                    ChatMessage {
                        from: from.clone(),
                        body: format!("hello from {from}"),
                    },
                )
                .unwrap();
        });
        net.run_for(SimDuration::from_secs(2));
    }
    net.run_for(SimDuration::from_secs(10));

    for (index, peer) in peers.iter().enumerate() {
        let inbox = net
            .node_ref::<TpsHost>(*peer)
            .unwrap()
            .engine
            .objects_received::<ChatMessage>();
        println!("{} received {} messages", names[index], inbox.len());
        // Each participant hears the two others (publishers do not receive
        // their own events, as with a JXTA wire pipe).
        assert_eq!(inbox.len(), 2);
    }
    println!("chat room converged.");
}
