//! A small decoupled chat application over TPS: every participant both
//! publishes and subscribes to `ChatMessage`, illustrating the many-to-many
//! (space- and time-decoupled) interaction the paper motivates — and the v2
//! handle model, where one node holds a `Publisher` *and* a `Subscriber`
//! simultaneously (impossible with the v1 borrow-based facade).
//!
//! Run with `cargo run --example chat_room`.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{Publisher, Subscriber, TpsConfig, TpsEvent, TpsHost};

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct ChatMessage {
    from: String,
    body: String,
}
impl TpsEvent for ChatMessage {
    const TYPE_NAME: &'static str = "ChatMessage";
}

fn main() {
    let mut builder = NetworkBuilder::new(5);
    let _rdv = builder.add_node(
        TpsHost::boxed(TpsConfig::new("rdv").with_peer(jxta::PeerConfig::rendezvous("rdv"))),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let names = ["alice", "bob", "carol"];
    let peers: Vec<_> = names
        .iter()
        .map(|name| {
            builder.add_node(
                TpsHost::boxed(TpsConfig::new(*name).with_seeds(vec![rdv_addr])),
                NodeConfig::lan_peer(SubnetId(0)),
            )
        })
        .collect();
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));

    // Every participant holds both ends of the room.
    let mut mouths: Vec<Publisher<ChatMessage>> = Vec::new();
    let mut ears: Vec<Subscriber<ChatMessage>> = Vec::new();
    let mut guards = Vec::new();
    for peer in &peers {
        let session = net.invoke::<TpsHost, _>(*peer, |host, _| host.session());
        mouths.push(session.publisher::<ChatMessage>());
        let ear = session.subscriber::<ChatMessage>();
        guards.push(ear.subscribe_pull());
        ears.push(ear);
    }
    net.run_for(SimDuration::from_secs(15));

    // Everyone says hello, straight through the owned handles.
    for (index, mouth) in mouths.iter().enumerate() {
        let from = names[index].to_owned();
        mouth
            .publish(&ChatMessage {
                body: format!("hello from {from}"),
                from,
            })
            .unwrap();
        net.run_for(SimDuration::from_secs(2));
    }
    net.run_for(SimDuration::from_secs(10));

    for (index, ear) in ears.iter().enumerate() {
        let inbox = ear.drain();
        println!("{} received {} messages", names[index], inbox.len());
        // Each participant hears the two others (publishers do not receive
        // their own events, as with a JXTA wire pipe).
        assert_eq!(inbox.len(), 2);
    }
    println!("chat room converged.");
}
