//! Quickstart: the paper's four programming phases (Figure 14) in ~40 lines
//! of user code.
//!
//! 1. type definition, 2. initialisation, 3. subscription, 4. publication.
//!
//! Run with `cargo run --example quickstart`.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{CollectingCallback, IgnoreExceptions, TpsConfig, TpsEvent, TpsHost, TpsInterfaceExt};

// ---- phase 1: type definition ------------------------------------------------
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct SkiRental {
    shop: String,
    price: f32,
    brand: String,
    number_of_days: f32,
}

impl TpsEvent for SkiRental {
    const TYPE_NAME: &'static str = "SkiRental";
}

fn main() {
    // ---- phase 2: initialisation (one engine per peer) -----------------------
    let mut builder = NetworkBuilder::new(42);
    let _rdv = builder.add_node(
        TpsHost::boxed(TpsConfig::new("rdv").with_peer(jxta::PeerConfig::rendezvous("rdv"))),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let shop = builder.add_node(
        TpsHost::boxed(TpsConfig::new("XTremShop").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let skier = builder.add_node(
        TpsHost::boxed(TpsConfig::new("skier").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));

    // ---- phase 3: subscription ------------------------------------------------
    net.invoke::<TpsHost, _>(skier, |host, ctx| {
        let (callback, _sink) = CollectingCallback::<SkiRental>::new();
        host.engine
            .interface::<SkiRental>()
            .subscribe(ctx, callback, IgnoreExceptions);
    });
    net.run_for(SimDuration::from_secs(15));

    // ---- phase 4: publication -------------------------------------------------
    net.invoke::<TpsHost, _>(shop, |host, ctx| {
        host.engine
            .interface::<SkiRental>()
            .publish(
                ctx,
                SkiRental {
                    shop: "XTremShop".into(),
                    price: 14.0,
                    brand: "Salomon".into(),
                    number_of_days: 100.0,
                },
            )
            .expect("publish failed");
    });
    net.run_for(SimDuration::from_secs(10));

    let received = net
        .node_ref::<TpsHost>(skier)
        .unwrap()
        .engine
        .objects_received::<SkiRental>();
    println!("skier received {} offer(s):", received.len());
    for offer in &received {
        println!(
            "  skis that could be rented: {} {} at {} CHF/day",
            offer.shop, offer.brand, offer.price
        );
    }
    assert_eq!(received.len(), 1);
}
