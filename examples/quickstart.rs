//! Quickstart: the paper's four programming phases (Figure 14) on the v2
//! session handles, in ~40 lines of user code.
//!
//! 1. type definition, 2. initialisation (mint owned handles),
//! 3. subscription (pull mode + guard), 4. publication.
//!
//! The handles do not borrow the engine: they are minted inside the
//! simulation but *held outside it*, enqueueing commands that the engine
//! drains at its next tick. The paper's original borrow-based
//! `TPSInterface` is kept as `TpsEngine::interface::<T>()` for
//! method-by-method fidelity with the published API.
//!
//! Run with `cargo run --example quickstart`.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{TpsConfig, TpsEvent, TpsHost};

// ---- phase 1: type definition ------------------------------------------------
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct SkiRental {
    shop: String,
    price: f32,
    brand: String,
    number_of_days: f32,
}

impl TpsEvent for SkiRental {
    const TYPE_NAME: &'static str = "SkiRental";
}

fn main() {
    // ---- phase 2: initialisation (one engine per peer, owned handles) --------
    let mut builder = NetworkBuilder::new(42);
    let _rdv = builder.add_node(
        TpsHost::boxed(TpsConfig::new("rdv").with_peer(jxta::PeerConfig::rendezvous("rdv"))),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let shop = builder.add_node(
        TpsHost::boxed(TpsConfig::new("XTremShop").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let skier = builder.add_node(
        TpsHost::boxed(TpsConfig::new("skier").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));

    // A publisher handle on the shop, a subscriber handle on the skier. Both
    // are owned values living *outside* the simulated network.
    let offers = net.invoke::<TpsHost, _>(shop, |host, _| host.session().publisher::<SkiRental>());
    let inbox = net.invoke::<TpsHost, _>(skier, |host, _| host.session().subscriber::<SkiRental>());

    // ---- phase 3: subscription (pull mode; the guard owns the subscription) ---
    let guard = inbox.subscribe_pull();
    net.run_for(SimDuration::from_secs(15));

    // ---- phase 4: publication -------------------------------------------------
    offers
        .publish(&SkiRental {
            shop: "XTremShop".into(),
            price: 14.0,
            brand: "Salomon".into(),
            number_of_days: 100.0,
        })
        .expect("publish failed");
    net.run_for(SimDuration::from_secs(10));

    let received = inbox.drain();
    println!("skier received {} offer(s):", received.len());
    for offer in &received {
        println!(
            "  skis that could be rented: {} {} at {} CHF/day",
            offer.shop, offer.brand, offer.price
        );
    }
    assert_eq!(received.len(), 1);

    // Dropping the guard unsubscribes at the skier's next tick.
    drop(guard);
    net.run_for(SimDuration::from_secs(1));
    assert_eq!(
        net.node_ref::<TpsHost>(skier)
            .unwrap()
            .engine
            .subscription_count(),
        0,
        "dropping the guard must unsubscribe"
    );
}
