//! Stress: several publishers flood one subscriber (the paper's Figure 20
//! scenario) and the example reports delivered vs lost events, illustrating
//! the receive-side saturation of the JXTA 1.0-era testbed model.
//!
//! Run with `cargo run --release --example flood_stress`.

use ski_rental::{stats, subscriber_throughput, Flavor};

fn main() {
    for publishers in [1usize, 2, 4] {
        for flavor in Flavor::ALL {
            let series = subscriber_throughput(flavor, publishers, 20, 2002);
            let s = stats(&series);
            println!(
                "{:<10} {} publisher(s): {:5.2} events received/sec (std {:4.2})",
                flavor.label(),
                publishers,
                s.mean,
                s.std_dev
            );
        }
        println!();
    }
}
