//! Subtype delivery (the paper's Figure 7): a subscriber to a *supertype*
//! receives instances of every subtype, structurally projected onto the
//! supertype's fields.
//!
//! Run with `cargo run --example news_hierarchy`.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{CollectingCallback, IgnoreExceptions, TpsConfig, TpsEvent, TpsHost, TpsInterfaceExt};

/// The root of the hierarchy (type `A` in Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct NewsItem {
    headline: String,
    importance: u8,
}
impl TpsEvent for NewsItem {
    const TYPE_NAME: &'static str = "NewsItem";
}

/// A subtype (type `B`): sports news carry a discipline.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct SportsNews {
    headline: String,
    importance: u8,
    discipline: String,
}
impl TpsEvent for SportsNews {
    const TYPE_NAME: &'static str = "SportsNews";
    const SUPERTYPES: &'static [&'static str] = &["NewsItem"];
}

/// A deeper subtype (type `D`): ski-race results.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct SkiRaceResult {
    headline: String,
    importance: u8,
    discipline: String,
    winner: String,
}
impl TpsEvent for SkiRaceResult {
    const TYPE_NAME: &'static str = "SkiRaceResult";
    const SUPERTYPES: &'static [&'static str] = &["SportsNews"];
}

fn main() {
    let mut builder = NetworkBuilder::new(11);
    let _rdv = builder.add_node(
        TpsHost::boxed(TpsConfig::new("rdv").with_peer(jxta::PeerConfig::rendezvous("rdv"))),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let agency = builder.add_node(
        TpsHost::boxed(TpsConfig::new("agency").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let reader = builder.add_node(
        TpsHost::boxed(TpsConfig::new("reader").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));

    // The reader subscribes only to the *root* type.
    net.invoke::<TpsHost, _>(reader, |host, ctx| {
        host.engine.register_type::<SportsNews>();
        host.engine.register_type::<SkiRaceResult>();
        let (callback, _sink) = CollectingCallback::<NewsItem>::new();
        host.engine
            .interface::<NewsItem>()
            .subscribe(ctx, callback, IgnoreExceptions);
    });
    net.run_for(SimDuration::from_secs(15));

    // The agency publishes instances of the whole hierarchy.
    net.invoke::<TpsHost, _>(agency, |host, ctx| {
        host.engine
            .interface::<NewsItem>()
            .publish(
                ctx,
                NewsItem {
                    headline: "P2P acclaimed by jury of peers".into(),
                    importance: 3,
                },
            )
            .unwrap();
        host.engine
            .interface::<SportsNews>()
            .publish(
                ctx,
                SportsNews {
                    headline: "Ski season opens".into(),
                    importance: 5,
                    discipline: "alpine".into(),
                },
            )
            .unwrap();
        host.engine
            .interface::<SkiRaceResult>()
            .publish(
                ctx,
                SkiRaceResult {
                    headline: "Lauberhorn downhill".into(),
                    importance: 9,
                    discipline: "downhill".into(),
                    winner: "A. Racer".into(),
                },
            )
            .unwrap();
    });
    net.run_for(SimDuration::from_secs(10));

    let items = net
        .node_ref::<TpsHost>(reader)
        .unwrap()
        .engine
        .objects_received::<NewsItem>();
    println!(
        "reader subscribed to NewsItem only and received {} items:",
        items.len()
    );
    for item in &items {
        println!("  [{}] {}", item.importance, item.headline);
    }
    assert_eq!(
        items.len(),
        3,
        "the NewsItem subscriber must see all three publications"
    );
}
