//! Subtype delivery (the paper's Figure 7): a subscriber to a *supertype*
//! receives instances of every subtype, structurally projected onto the
//! supertype's fields — consumed here through a v2 pull-mode subscriber.
//!
//! Run with `cargo run --example news_hierarchy`.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{TpsConfig, TpsEvent, TpsHost};

/// The root of the hierarchy (type `A` in Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct NewsItem {
    headline: String,
    importance: u8,
}
impl TpsEvent for NewsItem {
    const TYPE_NAME: &'static str = "NewsItem";
}

/// A subtype (type `B`): sports news carry a discipline.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct SportsNews {
    headline: String,
    importance: u8,
    discipline: String,
}
impl TpsEvent for SportsNews {
    const TYPE_NAME: &'static str = "SportsNews";
    const SUPERTYPES: &'static [&'static str] = &["NewsItem"];
}

/// A deeper subtype (type `D`): ski-race results.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct SkiRaceResult {
    headline: String,
    importance: u8,
    discipline: String,
    winner: String,
}
impl TpsEvent for SkiRaceResult {
    const TYPE_NAME: &'static str = "SkiRaceResult";
    const SUPERTYPES: &'static [&'static str] = &["SportsNews"];
}

fn main() {
    let mut builder = NetworkBuilder::new(11);
    let _rdv = builder.add_node(
        TpsHost::boxed(TpsConfig::new("rdv").with_peer(jxta::PeerConfig::rendezvous("rdv"))),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let rdv_addr = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);
    let agency = builder.add_node(
        TpsHost::boxed(TpsConfig::new("agency").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let reader = builder.add_node(
        TpsHost::boxed(TpsConfig::new("reader").with_seeds(vec![rdv_addr])),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));

    // The reader session registers the whole hierarchy (so the subtype
    // relation is known locally) but subscribes only to the *root* type.
    let reader_session = net.invoke::<TpsHost, _>(reader, |host, _| host.session());
    reader_session.register::<SportsNews>();
    reader_session.register::<SkiRaceResult>();
    let inbox = reader_session.subscriber::<NewsItem>();
    let _guard = inbox.subscribe_pull();
    net.run_for(SimDuration::from_secs(15));

    // The agency holds one publisher handle per hierarchy level — coexisting
    // on the same node, something the v1 borrow-based facade cannot express.
    let agency_session = net.invoke::<TpsHost, _>(agency, |host, _| host.session());
    let news_desk = agency_session.publisher::<NewsItem>();
    let sports_desk = agency_session.publisher::<SportsNews>();
    let race_desk = agency_session.publisher::<SkiRaceResult>();
    news_desk
        .publish(&NewsItem {
            headline: "P2P acclaimed by jury of peers".into(),
            importance: 3,
        })
        .unwrap();
    sports_desk
        .publish(&SportsNews {
            headline: "Ski season opens".into(),
            importance: 5,
            discipline: "alpine".into(),
        })
        .unwrap();
    race_desk
        .publish(&SkiRaceResult {
            headline: "Lauberhorn downhill".into(),
            importance: 9,
            discipline: "downhill".into(),
            winner: "A. Racer".into(),
        })
        .unwrap();
    net.run_for(SimDuration::from_secs(10));

    let items = inbox.drain();
    println!(
        "reader subscribed to NewsItem only and received {} items:",
        items.len()
    );
    for item in &items {
        println!("  [{}] {}", item.importance, item.headline);
    }
    assert_eq!(
        items.len(),
        3,
        "the NewsItem subscriber must see all three publications"
    );
}
