//! The full ski-rental scenario of the paper (Section 4): several shops
//! publish offers, a skier subscribes with a content filter ("only offers
//! under 20 CHF/day") and later inspects `objectsReceived()`.
//!
//! Run with `cargo run --example ski_rental`.

use simnet::SimDuration;
use ski_rental::{Flavor, OfferGenerator, Scenario};

fn main() {
    // Three shops, one skier, over the TPS layer with the JXTA 1.0 cost model.
    let mut scenario = Scenario::build(Flavor::SrTps, 3, 1, 7);
    scenario.warm_up();

    let mut generator = OfferGenerator::new(99);
    for round in 0..5 {
        for publisher in 0..3 {
            scenario.publish_one(publisher);
            // Shops publish every few seconds, not back-to-back: give the
            // skier time to service each offer (the receive-side capacity
            // model drops events under flooding, as JXTA 1.0 did — that
            // regime is exercised by `flood_stress` and Figure 20 instead).
            scenario.advance(SimDuration::from_secs(2));
        }
        let _ = generator.next_offer();
        println!(
            "round {round}: skier has received {} offers so far",
            scenario.received_count(0)
        );
    }
    scenario.advance(SimDuration::from_secs(10));
    println!(
        "final count: {} offers received by the skier",
        scenario.received_count(0)
    );

    // v2 batching: shop 0 pushes its whole Monday-morning catalogue as one
    // wire message (one connection service per listener for the entire
    // batch, instead of one per offer).
    let before = scenario.received_count(0);
    let charged = scenario.publish_batch(0, 8);
    scenario.advance(SimDuration::from_secs(10));
    println!(
        "batch of 8 offers published in {:.1} ms of publisher time; skier received {} more",
        charged.as_millis_f64(),
        scenario.received_count(0) - before
    );
    println!("network stats: {}", scenario.network().total_stats());
    assert!(scenario.received_count(0) >= 10);
}
