//! # tps-jxta — reproduction of "OS Support for P2P Programming: a Case for TPS"
//!
//! Umbrella crate re-exporting the workspace's public API:
//!
//! * [`simnet`] — deterministic discrete-event WAN simulator (the "machines"
//!   and "network" of the paper's testbed),
//! * [`jxta`] — a from-scratch implementation of the JXTA P2P substrate
//!   (IDs, XML advertisements, messages, the six protocols, the services),
//! * [`tps`] — the paper's contribution: Type-based Publish/Subscribe,
//! * [`ski_rental`] — the evaluation application in its three flavours plus
//!   the measurement harness regenerating the paper's figures.
//!
//! See `examples/quickstart.rs` for the paper's four-phase walk-through and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.
#![warn(rust_2018_idioms)]

pub use jxta;
pub use simnet;
pub use ski_rental;
pub use tps;
