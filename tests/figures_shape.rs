//! Small-scale versions of the paper's evaluation, asserting that the *shape*
//! of every figure holds: who wins, by roughly what factor, and how the
//! curves move with the number of peers.

use ski_rental::{
    invocation_time, loc_report, mesh_fanout_report, publisher_throughput, stats, subscriber_throughput,
    Flavor,
};

#[test]
fn figure_18_shape_wire_fastest_and_sr_layers_close() {
    let wire = stats(&invocation_time(Flavor::JxtaWire, 1, 40, 2002)).mean;
    let sr_jxta = stats(&invocation_time(Flavor::SrJxta, 1, 40, 2002)).mean;
    let sr_tps = stats(&invocation_time(Flavor::SrTps, 1, 40, 2002)).mean;
    assert!(
        wire < sr_jxta && wire < sr_tps,
        "JXTA-WIRE must be the fastest layer"
    );
    let gap = (sr_tps - sr_jxta).abs() / sr_jxta;
    assert!(
        gap < 0.10,
        "SR-TPS and SR-JXTA should be within ~10% (measured gap {gap:.3})"
    );
    // Same order of magnitude as the paper (hundreds of milliseconds).
    assert!(sr_tps > 100.0 && sr_tps < 1_000.0);
}

#[test]
fn figure_18_shape_invocation_time_grows_with_subscribers() {
    let one = stats(&invocation_time(Flavor::SrJxta, 1, 10, 7)).mean;
    let four = stats(&invocation_time(Flavor::SrJxta, 4, 10, 7)).mean;
    assert!(
        four > one * 2.0,
        "4 subscribers should be at least 2x slower than 1 ({one:.1} -> {four:.1})"
    );
}

#[test]
fn figure_19_shape_throughput_drops_with_subscribers_and_layers_converge() {
    let wire_1 = stats(&publisher_throughput(Flavor::JxtaWire, 1, 30, 3, 2002)).mean;
    let tps_1 = stats(&publisher_throughput(Flavor::SrTps, 1, 30, 3, 2002)).mean;
    let wire_4 = stats(&publisher_throughput(Flavor::JxtaWire, 4, 30, 3, 2002)).mean;
    let tps_4 = stats(&publisher_throughput(Flavor::SrTps, 4, 30, 3, 2002)).mean;
    assert!(wire_1 > tps_1, "wire outpaces SR-TPS with one subscriber");
    assert!(
        wire_4 < wire_1 && tps_4 < tps_1,
        "more subscribers lower the publisher's rate"
    );
    // The absolute gap between layers shrinks as subscribers increase.
    assert!((wire_4 - tps_4) < (wire_1 - tps_1));
}

#[test]
fn figure_20_shape_subscriber_saturates_and_drops_with_more_publishers() {
    let one = stats(&subscriber_throughput(Flavor::SrTps, 1, 20, 2002)).mean;
    let four = stats(&subscriber_throughput(Flavor::SrTps, 4, 20, 2002)).mean;
    assert!(
        one > 3.0 && one < 10.0,
        "1-publisher rate should be a few events/sec ({one:.2})"
    );
    assert!(
        four < one / 2.0,
        "4 publishers should cut the received rate by ~2-3x ({one:.2} -> {four:.2})"
    );
}

#[test]
fn ablation_dissem_mesh_series_publisher_flat_and_fanout_sharded() {
    // The mesh series of the ablation_dissem bench: publisher copies stay
    // flat in the subscriber count while the per-rendezvous fan-out shrinks
    // as the shard count N grows.
    const SEED: u64 = 2002;
    // Publisher copies do not grow with subscribers (O(1) at any N).
    for shards in [1usize, 2, 4, 8] {
        let small = mesh_fanout_report(4, shards, 2, SEED);
        let large = mesh_fanout_report(32, shards, 2, SEED);
        assert_eq!(small.publisher_copies, 1, "N={shards}: one copy at 4 subscribers");
        assert_eq!(
            large.publisher_copies, small.publisher_copies,
            "N={shards}: publisher copies must be flat in the subscriber count"
        );
        assert_eq!(large.mesh_links, shards - 1, "full mesh keeps N-1 links");
        assert!(
            (large.delivered_ratio - 1.0).abs() < f64::EPSILON,
            "N={shards}: the mesh must stay exactly-once complete"
        );
        // Per-rendezvous fan-out ≈ subscribers/N + mesh links. The publisher
        // also holds a lease, and uncoordinated hash sharding balances only
        // up to the usual √(s/N) wobble, so the certified bound is the
        // classic within-2x-of-perfect-split one.
        let bound = 2 * (32usize + 1).div_ceil(shards) + large.mesh_links;
        assert!(
            large.max_rendezvous_fanout <= bound,
            "N={shards}: max per-rendezvous fan-out {} exceeds 2*ceil(33/N)+mesh = {bound}",
            large.max_rendezvous_fanout
        );
    }
    // At a fixed subscriber count the per-shard client load strictly shrinks
    // as N grows (16 subscribers: 17 -> ... -> ~4).
    let loads: Vec<usize> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| mesh_fanout_report(16, n, 2, SEED).max_rendezvous_clients)
        .collect();
    assert!(
        loads.windows(2).all(|w| w[1] < w[0]),
        "per-rendezvous client load must shrink as N grows: {loads:?}"
    );
}

#[test]
fn section_4_4_tps_saves_application_code() {
    let report = loc_report();
    assert!(report.tps_user_loc < report.jxta_user_loc);
    assert!(report.full_api_savings() > 1_000);
}
