//! Cross-crate integration tests: the TPS layer running over the JXTA
//! substrate on the simulated network, exercised end-to-end through the v2
//! session handles (owned `Publisher<T>` / `Subscriber<T>` minted from
//! `TpsEngine::session()`, held *outside* the simulation).

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{Criteria, DisseminationConfig, MailboxPolicy, OverflowPolicy, TpsConfig, TpsEvent, TpsHost};

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct Offer {
    shop: String,
    price: f32,
}
impl TpsEvent for Offer {
    const TYPE_NAME: &'static str = "Offer";
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct LastMinuteOffer {
    shop: String,
    price: f32,
    hours_left: u8,
}
impl TpsEvent for LastMinuteOffer {
    const TYPE_NAME: &'static str = "LastMinuteOffer";
    const SUPERTYPES: &'static [&'static str] = &["Offer"];
}

const RDV_TCP: SimAddress = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);

fn host_with_dissemination(name: &str, dissemination: DisseminationConfig) -> Box<TpsHost> {
    TpsHost::boxed(
        TpsConfig::new(name)
            .with_peer(jxta::PeerConfig::edge(name).with_costs(jxta::CostModel::free()))
            .with_seeds(vec![RDV_TCP])
            .with_dissemination(dissemination),
    )
}

fn rendezvous_host(dissemination: DisseminationConfig) -> Box<TpsHost> {
    TpsHost::boxed(
        TpsConfig::new("rdv")
            .with_peer(jxta::PeerConfig::rendezvous("rdv").with_costs(jxta::CostModel::free()))
            .with_dissemination(dissemination),
    )
}

struct World {
    net: simnet::Network,
    publisher: simnet::NodeId,
    subscriber: simnet::NodeId,
}

fn world(seed: u64) -> World {
    world_with_dissemination(seed, DisseminationConfig::default())
}

fn world_with_dissemination(seed: u64, dissemination: DisseminationConfig) -> World {
    let mut builder = NetworkBuilder::new(seed);
    builder.add_node(
        rendezvous_host(dissemination.clone()),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let publisher = builder.add_node(
        host_with_dissemination("publisher", dissemination.clone()),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let subscriber = builder.add_node(
        host_with_dissemination("subscriber", dissemination),
        NodeConfig::lan_peer(SubnetId(0)),
    );
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));
    World {
        net,
        publisher,
        subscriber,
    }
}

impl World {
    fn session(&mut self, node: simnet::NodeId) -> tps::Session {
        self.net.invoke::<TpsHost, _>(node, |host, _| host.session())
    }
}

#[test]
fn typed_publish_subscribe_end_to_end() {
    let mut w = world(1);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let _guard = inbox.subscribe_pull();
    w.net.run_for(SimDuration::from_secs(15));
    let offers = w.session(w.publisher).publisher::<Offer>();
    for i in 0..5 {
        offers
            .publish(&Offer {
                shop: format!("shop-{i}"),
                price: 10.0 + i as f32,
            })
            .unwrap();
        w.net.run_for(SimDuration::from_secs(1));
    }
    w.net.run_for(SimDuration::from_secs(10));
    let received = inbox.drain();
    assert_eq!(received.len(), 5);
    assert_eq!(received[0].shop, "shop-0");
    assert_eq!(
        w.net
            .node_ref::<TpsHost>(w.subscriber)
            .unwrap()
            .engine
            .received_count(),
        5
    );
}

/// The acceptance scenario of the v2 redesign: one node simultaneously holds
/// a `Publisher<T>` and two `Subscriber<T>` handles (one pull-mode, one
/// callback-mode) — impossible with the v1 borrow-based facade, whose typed
/// views each exclusively borrow the engine.
#[test]
fn coexisting_publisher_and_subscribers_on_one_node() {
    let mut w = world(7);
    let session = w.session(w.subscriber);
    let outbound = session.publisher::<Offer>();
    let pull_inbox = session.subscriber::<Offer>();
    let push_inbox = session.subscriber::<Offer>();
    let _pull_guard = pull_inbox.subscribe_pull();
    let (callback, sink) = tps::CollectingCallback::<Offer>::new();
    let _push_guard = push_inbox.subscribe(callback, tps::IgnoreExceptions);

    // The far side both subscribes and publishes.
    let far_session = w.session(w.publisher);
    let far_inbox = far_session.subscriber::<Offer>();
    let _far_guard = far_inbox.subscribe_pull();
    let far_offers = far_session.publisher::<Offer>();
    w.net.run_for(SimDuration::from_secs(15));

    far_offers
        .publish(&Offer {
            shop: "remote".into(),
            price: 1.0,
        })
        .unwrap();
    outbound
        .publish(&Offer {
            shop: "local".into(),
            price: 2.0,
        })
        .unwrap();
    w.net.run_for(SimDuration::from_secs(10));

    // Both subscribers on the holding node saw the remote publication...
    let pulled = pull_inbox.drain();
    assert_eq!(pulled.len(), 1, "pull-mode subscriber receives the remote offer");
    assert_eq!(pulled[0].shop, "remote");
    assert_eq!(sink.borrow().len(), 1, "callback subscriber receives it too");
    assert_eq!(sink.borrow()[0].shop, "remote");
    // ...and the same node's publisher reached the far side.
    let far_received = far_inbox.drain();
    assert_eq!(far_received.len(), 1, "the coexisting publisher must work");
    assert_eq!(far_received[0].shop, "local");
}

#[test]
fn subtype_instances_reach_supertype_subscribers() {
    let mut w = world(2);
    let session = w.session(w.subscriber);
    session.register::<LastMinuteOffer>();
    let inbox = session.subscriber::<Offer>();
    let _guard = inbox.subscribe_pull();
    w.net.run_for(SimDuration::from_secs(15));
    let last_minute = w.session(w.publisher).publisher::<LastMinuteOffer>();
    last_minute
        .publish(&LastMinuteOffer {
            shop: "XTremShop".into(),
            price: 5.0,
            hours_left: 3,
        })
        .unwrap();
    w.net.run_for(SimDuration::from_secs(10));
    let as_supertype = inbox.drain();
    assert_eq!(
        as_supertype.len(),
        1,
        "the supertype subscriber must receive the subtype instance"
    );
    assert_eq!(as_supertype[0].shop, "XTremShop");
    assert_eq!(as_supertype[0].price, 5.0);
}

#[test]
fn criteria_filter_events_by_content() {
    let mut w = world(3);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let _guard = inbox.subscribe_pull_with(
        MailboxPolicy::default(),
        Criteria::filter("cheap offers only", |o: &Offer| o.price < 20.0),
    );
    w.net.run_for(SimDuration::from_secs(15));
    let offers = w.session(w.publisher).publisher::<Offer>();
    for price in [10.0_f32, 50.0, 15.0, 99.0] {
        offers
            .publish(&Offer {
                shop: "s".into(),
                price,
            })
            .unwrap();
        w.net.run_for(SimDuration::from_secs(1));
    }
    w.net.run_for(SimDuration::from_secs(10));
    // All four events were received by the engine, but only two passed the
    // criteria into the mailbox.
    let cheap = inbox.drain();
    assert_eq!(cheap.len(), 2);
    assert!(cheap.iter().all(|o| o.price < 20.0));
    let host = w.net.node_ref::<TpsHost>(w.subscriber).unwrap();
    assert_eq!(host.engine.counters().events_received, 4);
    assert_eq!(host.engine.objects_received::<Offer>().len(), 4);
}

#[test]
fn dropping_the_guard_unsubscribes() {
    let mut w = world(4);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let guard = inbox.subscribe_pull();
    w.net.run_for(SimDuration::from_secs(15));
    assert_eq!(
        w.net
            .node_ref::<TpsHost>(w.subscriber)
            .unwrap()
            .engine
            .subscription_count(),
        1
    );
    drop(guard);
    w.net.run_for(SimDuration::from_secs(1));
    assert_eq!(
        w.net
            .node_ref::<TpsHost>(w.subscriber)
            .unwrap()
            .engine
            .subscription_count(),
        0,
        "the dropped guard must unsubscribe at the next tick"
    );
    let offers = w.session(w.publisher).publisher::<Offer>();
    offers
        .publish(&Offer {
            shop: "late".into(),
            price: 1.0,
        })
        .unwrap();
    w.net.run_for(SimDuration::from_secs(10));
    // The event still arrives at the engine (objectsReceived keeps history),
    // but nothing is delivered after the unsubscribe.
    let host = w.net.node_ref::<TpsHost>(w.subscriber).unwrap();
    assert_eq!(host.engine.counters().events_delivered, 0);
    assert_eq!(inbox.pending(), 0);
    assert_eq!(host.engine.received_count(), 1);
}

#[test]
fn pause_and_resume_bound_the_delivery_window() {
    let mut w = world(8);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let guard = inbox.subscribe_pull();
    w.net.run_for(SimDuration::from_secs(15));
    let offers = w.session(w.publisher).publisher::<Offer>();
    let publish = |w: &mut World, shop: &str| {
        offers
            .publish(&Offer {
                shop: shop.into(),
                price: 1.0,
            })
            .unwrap();
        w.net.run_for(SimDuration::from_secs(2));
    };
    publish(&mut w, "before-pause");
    guard.pause();
    w.net.run_for(SimDuration::from_secs(1));
    publish(&mut w, "during-pause-1");
    publish(&mut w, "during-pause-2");
    guard.resume();
    w.net.run_for(SimDuration::from_secs(1));
    publish(&mut w, "after-resume");
    w.net.run_for(SimDuration::from_secs(10));

    let shops: Vec<String> = inbox.drain().into_iter().map(|o| o.shop).collect();
    assert_eq!(
        shops,
        vec!["before-pause".to_owned(), "after-resume".into()],
        "events published during the pause window must not be delivered"
    );
    // The engine still received all four (pause suspends delivery, not receipt).
    assert_eq!(
        w.net
            .node_ref::<TpsHost>(w.subscriber)
            .unwrap()
            .engine
            .received_count(),
        4
    );
    guard.detach();
}

#[test]
fn pull_mailbox_overflow_policies_end_to_end() {
    for (overflow, expect_first) in [
        (OverflowPolicy::DropOldest, "shop-3"),
        (OverflowPolicy::DropNewest, "shop-0"),
    ] {
        let mut w = world(9);
        let inbox = w.session(w.subscriber).subscriber::<Offer>();
        let _guard =
            inbox.subscribe_pull_with(MailboxPolicy::bounded(2).with_overflow(overflow), Criteria::any());
        w.net.run_for(SimDuration::from_secs(15));
        let offers = w.session(w.publisher).publisher::<Offer>();
        for i in 0..5 {
            offers
                .publish(&Offer {
                    shop: format!("shop-{i}"),
                    price: i as f32,
                })
                .unwrap();
            w.net.run_for(SimDuration::from_secs(1));
        }
        w.net.run_for(SimDuration::from_secs(10));
        assert_eq!(inbox.pending(), 2, "{overflow:?}: mailbox stays bounded");
        assert_eq!(
            inbox.overflow_dropped(),
            3,
            "{overflow:?}: three events overflowed"
        );
        let kept = inbox.drain();
        assert_eq!(kept[0].shop, expect_first, "{overflow:?} keeps the wrong half");
    }
}

#[test]
fn exception_handlers_receive_callback_failures() {
    let mut w = world(5);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let (handler, failures) = tps::CountingExceptionHandler::new();
    let _guard = inbox.subscribe(
        tps::CallbackFn(|_offer: Offer| Err(tps::CallBackException::new("gui crashed"))),
        handler,
    );
    w.net.run_for(SimDuration::from_secs(15));
    let offers = w.session(w.publisher).publisher::<Offer>();
    offers
        .publish(&Offer {
            shop: "s".into(),
            price: 2.0,
        })
        .unwrap();
    w.net.run_for(SimDuration::from_secs(10));
    assert_eq!(
        *failures.borrow(),
        1,
        "the exception handler must see the callback failure"
    );
}

#[test]
fn delivery_survives_a_subscriber_address_change() {
    let mut w = world(6);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let _guard = inbox.subscribe_pull();
    w.net.run_for(SimDuration::from_secs(15));
    let offers = w.session(w.publisher).publisher::<Offer>();
    offers
        .publish(&Offer {
            shop: "before".into(),
            price: 1.0,
        })
        .unwrap();
    w.net.run_for(SimDuration::from_secs(5));

    // The skier's laptop changes networks: new addresses, stale bindings.
    w.net.reassign_addresses(w.subscriber);
    // Give the platform time to re-publish its advertisement and for the
    // publisher's finder/PBP machinery to re-resolve the listener.
    w.net.run_for(SimDuration::from_secs(40));

    offers
        .publish(&Offer {
            shop: "after".into(),
            price: 2.0,
        })
        .unwrap();
    w.net.run_for(SimDuration::from_secs(20));
    let shops: Vec<String> = inbox.drain().into_iter().map(|o| o.shop).collect();
    assert!(shops.contains(&"before".to_owned()));
    assert!(
        shops.contains(&"after".to_owned()),
        "the pipe must re-bind to the subscriber's new address (got {shops:?})"
    );
}

// ---------------------------------------------------------------------------
// batching equivalence
// ---------------------------------------------------------------------------

fn strategy_of(index: usize) -> DisseminationConfig {
    match tps::StrategyKind::ALL[index % tps::StrategyKind::ALL.len()] {
        tps::StrategyKind::DirectFanout => DisseminationConfig::direct_fanout(),
        tps::StrategyKind::RendezvousTree => DisseminationConfig::rendezvous_tree(),
        // One rendezvous in this world: the mesh degenerates to the tree.
        tps::StrategyKind::RendezvousMesh => DisseminationConfig::rendezvous_mesh(1),
        // Fanout 64 >= the three-node neighbourhood: flooding-with-dedup, so
        // delivery is deterministic and the sequences comparable.
        tps::StrategyKind::Gossip => DisseminationConfig::gossip(64, 4),
    }
}

/// Runs one world, publishes `prices` (as one batch or as singles) and
/// returns the sequence the subscriber observed.
fn delivered_sequence(
    seed: u64,
    dissemination: DisseminationConfig,
    prices: &[u32],
    batch: bool,
) -> Vec<Offer> {
    let mut w = world_with_dissemination(seed, dissemination);
    let inbox = w.session(w.subscriber).subscriber::<Offer>();
    let _guard = inbox.subscribe_pull();
    w.net.run_for(SimDuration::from_secs(15));
    let offers = w.session(w.publisher).publisher::<Offer>();
    let events: Vec<Offer> = prices
        .iter()
        .enumerate()
        .map(|(i, p)| Offer {
            shop: format!("shop-{i}"),
            price: *p as f32,
        })
        .collect();
    if batch {
        offers.publish_batch(&events).unwrap();
    } else {
        for event in &events {
            offers.publish(event).unwrap();
        }
    }
    w.net.run_for(SimDuration::from_secs(20));
    inbox.drain()
}

proptest! {
    /// `publish_batch(&events)` and `events.len()` single publishes deliver
    /// identical event sequences to the subscriber, under every
    /// dissemination strategy.
    #[test]
    fn batch_publish_is_equivalent_to_single_publishes(
        strategy_index in 0usize..3,
        prices in proptest::collection::vec(1u32..1000, 1..6),
        seed in 1u64..1_000,
    ) {
        let dissemination = strategy_of(strategy_index);
        let singles = delivered_sequence(seed, dissemination.clone(), &prices, false);
        let batched = delivered_sequence(seed, dissemination.clone(), &prices, true);
        prop_assert_eq!(
            singles.len(), prices.len(),
            "strategy {}: singles run must deliver everything", dissemination.kind
        );
        prop_assert_eq!(
            &singles, &batched,
            "strategy {}: batch and single publishes must deliver the same sequence",
            dissemination.kind
        );
    }
}
