//! Cross-crate integration tests: the TPS layer running over the JXTA
//! substrate on the simulated network, exercised end-to-end.

use serde::{Deserialize, Serialize};
use simnet::{NetworkBuilder, NodeConfig, SimAddress, SimDuration, SubnetId, TransportKind};
use tps::{
    CollectingCallback, CountingExceptionHandler, Criteria, IgnoreExceptions, TpsConfig, TpsEvent, TpsHost,
    TpsInterfaceExt,
};

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct Offer {
    shop: String,
    price: f32,
}
impl TpsEvent for Offer {
    const TYPE_NAME: &'static str = "Offer";
}

#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct LastMinuteOffer {
    shop: String,
    price: f32,
    hours_left: u8,
}
impl TpsEvent for LastMinuteOffer {
    const TYPE_NAME: &'static str = "LastMinuteOffer";
    const SUPERTYPES: &'static [&'static str] = &["Offer"];
}

const RDV_TCP: SimAddress = SimAddress::new(TransportKind::Tcp, 0x0A00_0001, 9701);

fn host(name: &str) -> Box<TpsHost> {
    TpsHost::boxed(
        TpsConfig::new(name)
            .with_peer(jxta::PeerConfig::edge(name).with_costs(jxta::CostModel::free()))
            .with_seeds(vec![RDV_TCP]),
    )
}

fn rendezvous_host() -> Box<TpsHost> {
    TpsHost::boxed(
        TpsConfig::new("rdv")
            .with_peer(jxta::PeerConfig::rendezvous("rdv").with_costs(jxta::CostModel::free())),
    )
}

struct World {
    net: simnet::Network,
    publisher: simnet::NodeId,
    subscriber: simnet::NodeId,
}

fn world(seed: u64) -> World {
    let mut builder = NetworkBuilder::new(seed);
    builder.add_node(rendezvous_host(), NodeConfig::lan_peer(SubnetId(0)));
    let publisher = builder.add_node(host("publisher"), NodeConfig::lan_peer(SubnetId(0)));
    let subscriber = builder.add_node(host("subscriber"), NodeConfig::lan_peer(SubnetId(0)));
    let mut net = builder.build();
    net.run_for(SimDuration::from_secs(2));
    World {
        net,
        publisher,
        subscriber,
    }
}

#[test]
fn typed_publish_subscribe_end_to_end() {
    let mut w = world(1);
    w.net.invoke::<TpsHost, _>(w.subscriber, |host, ctx| {
        let (cb, _sink) = CollectingCallback::<Offer>::new();
        host.engine
            .interface::<Offer>()
            .subscribe(ctx, cb, IgnoreExceptions);
    });
    w.net.run_for(SimDuration::from_secs(15));
    for i in 0..5 {
        w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
            host.engine
                .interface::<Offer>()
                .publish(
                    ctx,
                    Offer {
                        shop: format!("shop-{i}"),
                        price: 10.0 + i as f32,
                    },
                )
                .unwrap();
        });
        w.net.run_for(SimDuration::from_secs(1));
    }
    w.net.run_for(SimDuration::from_secs(10));
    let received = w
        .net
        .node_ref::<TpsHost>(w.subscriber)
        .unwrap()
        .engine
        .objects_received::<Offer>();
    assert_eq!(received.len(), 5);
    assert_eq!(received[0].shop, "shop-0");
}

#[test]
fn subtype_instances_reach_supertype_subscribers() {
    let mut w = world(2);
    w.net.invoke::<TpsHost, _>(w.subscriber, |host, ctx| {
        host.engine.register_type::<LastMinuteOffer>();
        let (cb, _sink) = CollectingCallback::<Offer>::new();
        host.engine
            .interface::<Offer>()
            .subscribe(ctx, cb, IgnoreExceptions);
    });
    w.net.run_for(SimDuration::from_secs(15));
    w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
        host.engine
            .interface::<LastMinuteOffer>()
            .publish(
                ctx,
                LastMinuteOffer {
                    shop: "XTremShop".into(),
                    price: 5.0,
                    hours_left: 3,
                },
            )
            .unwrap();
    });
    w.net.run_for(SimDuration::from_secs(10));
    let as_supertype = w
        .net
        .node_ref::<TpsHost>(w.subscriber)
        .unwrap()
        .engine
        .objects_received::<Offer>();
    assert_eq!(
        as_supertype.len(),
        1,
        "the supertype subscriber must receive the subtype instance"
    );
    assert_eq!(as_supertype[0].shop, "XTremShop");
    assert_eq!(as_supertype[0].price, 5.0);
}

#[test]
fn criteria_filter_events_by_content() {
    let mut w = world(3);
    w.net.invoke::<TpsHost, _>(w.subscriber, |host, ctx| {
        let (cb, _sink) = CollectingCallback::<Offer>::new();
        host.engine.interface::<Offer>().subscribe_with(
            ctx,
            cb,
            IgnoreExceptions,
            Criteria::filter("cheap offers only", |o: &Offer| o.price < 20.0),
        );
    });
    w.net.run_for(SimDuration::from_secs(15));
    for price in [10.0_f32, 50.0, 15.0, 99.0] {
        w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
            host.engine
                .interface::<Offer>()
                .publish(
                    ctx,
                    Offer {
                        shop: "s".into(),
                        price,
                    },
                )
                .unwrap();
        });
        w.net.run_for(SimDuration::from_secs(1));
    }
    w.net.run_for(SimDuration::from_secs(10));
    let host = w.net.node_ref::<TpsHost>(w.subscriber).unwrap();
    // All four events were received by the engine, but only two passed the
    // criteria and were delivered to the call-back.
    assert_eq!(host.engine.counters().events_received, 4);
    assert_eq!(host.engine.counters().events_delivered, 4);
    assert_eq!(host.engine.objects_received::<Offer>().len(), 4);
}

#[test]
fn unsubscribe_stops_delivery_to_callbacks() {
    let mut w = world(4);
    let id = w.net.invoke::<TpsHost, _>(w.subscriber, |host, ctx| {
        let (cb, _sink) = CollectingCallback::<Offer>::new();
        host.engine
            .interface::<Offer>()
            .subscribe(ctx, cb, IgnoreExceptions)
    });
    w.net.run_for(SimDuration::from_secs(15));
    w.net.invoke::<TpsHost, _>(w.subscriber, |host, _ctx| {
        host.engine.unsubscribe(id).unwrap();
        assert_eq!(host.engine.subscription_count(), 0);
    });
    w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
        host.engine
            .interface::<Offer>()
            .publish(
                ctx,
                Offer {
                    shop: "late".into(),
                    price: 1.0,
                },
            )
            .unwrap();
    });
    w.net.run_for(SimDuration::from_secs(10));
    let host = w.net.node_ref::<TpsHost>(w.subscriber).unwrap();
    // The event still arrives at the engine (objectsReceived keeps history),
    // but no call-back delivery happens after unsubscribe().
    assert_eq!(host.engine.counters().events_delivered, 0);
}

#[test]
fn exception_handlers_receive_callback_failures() {
    let mut w = world(5);
    let failures = w.net.invoke::<TpsHost, _>(w.subscriber, |host, ctx| {
        let (handler, failures) = CountingExceptionHandler::new();
        host.engine.interface::<Offer>().subscribe(
            ctx,
            tps::CallbackFn(|_offer: Offer| Err(tps::CallBackException::new("gui crashed"))),
            handler,
        );
        failures
    });
    w.net.run_for(SimDuration::from_secs(15));
    w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
        host.engine
            .interface::<Offer>()
            .publish(
                ctx,
                Offer {
                    shop: "s".into(),
                    price: 2.0,
                },
            )
            .unwrap();
    });
    w.net.run_for(SimDuration::from_secs(10));
    assert_eq!(
        *failures.borrow(),
        1,
        "the exception handler must see the callback failure"
    );
}

#[test]
fn delivery_survives_a_subscriber_address_change() {
    let mut w = world(6);
    w.net.invoke::<TpsHost, _>(w.subscriber, |host, ctx| {
        let (cb, _sink) = CollectingCallback::<Offer>::new();
        host.engine
            .interface::<Offer>()
            .subscribe(ctx, cb, IgnoreExceptions);
    });
    w.net.run_for(SimDuration::from_secs(15));
    w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
        host.engine
            .interface::<Offer>()
            .publish(
                ctx,
                Offer {
                    shop: "before".into(),
                    price: 1.0,
                },
            )
            .unwrap();
    });
    w.net.run_for(SimDuration::from_secs(5));

    // The skier's laptop changes networks: new addresses, stale bindings.
    w.net.reassign_addresses(w.subscriber);
    // Give the platform time to re-publish its advertisement and for the
    // publisher's finder/PBP machinery to re-resolve the listener.
    w.net.run_for(SimDuration::from_secs(40));

    w.net.invoke::<TpsHost, _>(w.publisher, |host, ctx| {
        host.engine
            .interface::<Offer>()
            .publish(
                ctx,
                Offer {
                    shop: "after".into(),
                    price: 2.0,
                },
            )
            .unwrap();
    });
    w.net.run_for(SimDuration::from_secs(20));
    let received = w
        .net
        .node_ref::<TpsHost>(w.subscriber)
        .unwrap()
        .engine
        .objects_received::<Offer>();
    let shops: Vec<&str> = received.iter().map(|o| o.shop.as_str()).collect();
    assert!(shops.contains(&"before"));
    assert!(
        shops.contains(&"after"),
        "the pipe must re-bind to the subscriber's new address (got {shops:?})"
    );
}
